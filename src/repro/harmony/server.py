"""The tuning server: the strategy host of the Active Harmony model.

Applications (clients) register their tunable parameters, then loop:

1. ``fetch`` — receive the configuration to run their next time step with;
2. run the time step, measuring its wall time;
3. ``report`` — send the measurement back.

The server multiplexes the tuner's candidate batch over whatever clients
show up: each candidate needs K samples (the §5.2 multi-sampling), and when
several clients run concurrently the samples are collected *in parallel*
across clients — the "no additional time burden" case the paper describes
for 64 processors and K = 10.  Clients beyond the outstanding work are
assigned the incumbent best configuration (exploitation).

One :class:`TuningServer` hosts many named **sessions** — independent
(tuner, sample ledger, measurement log) triples, each behind its own lock —
so unrelated tuning runs sharing the service scale instead of serializing
on a global lock.  Messages address a session with a ``session`` field;
omitting it targets the ``"default"`` session, which preserves the original
single-session protocol and API unchanged.

The server is transport-agnostic: it consumes plain-dict messages (see
:meth:`TuningServer.handle`) and is thread-safe, so the same instance can
sit behind the in-process transport, the thread-per-connection TCP
transport, or the asyncio transport.

**Durability.**  Attach a :class:`~repro.harmony.wal.WalWriter` (see
:meth:`TuningServer.attach_wal`) and every state mutation — register,
open/close session, fetch, report, requeue — is appended to the write-ahead
log *while the session lock is held*, so log order equals application
order and replaying the log rebuilds the exact server state.  Clients may
stamp fetch/report messages with a per-client sequence number ``cseq``;
the session keeps a per-client high-water mark plus a bounded reply cache
(both WAL-persisted), so a retried request after a lost ACK is answered
from the cache without mutating anything — exactly-once, end to end.
Registration carries an optional client ``nonce`` with the same property:
re-registering with a known nonce (or ``resume: <client_id>``) returns the
existing client id instead of minting a new one.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, defaultdict
from contextlib import ExitStack
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.base import BatchTuner
from repro.core.sampling import (
    MeanEstimator,
    MedianEstimator,
    MinEstimator,
    SamplingPlan,
)
from repro.harmony.protocol import (
    PROTOCOL_VERSION,
    error_response,
    moved_response,
)
from repro.space import ParameterSpace
from repro.space.serialize import space_from_spec

__all__ = [
    "ServerSession",
    "SessionMovedAway",
    "TuningServer",
    "DEFAULT_SESSION",
]

#: the session addressed when a message carries no ``session`` field
DEFAULT_SESSION = "default"

#: estimators a remote ``open_session`` may ask for by name
_SESSION_ESTIMATORS = {
    "min": MinEstimator,
    "mean": MeanEstimator,
    "median": MedianEstimator,
}

#: reverse map used when serializing a session's plan into a WAL snapshot
_ESTIMATOR_NAMES = {cls: name for name, cls in _SESSION_ESTIMATORS.items()}

#: cached replies kept per client for exactly-once retries; a lock-step or
#: pipelined client retries only its most recent window, so a small cache
#: bounds memory without ever evicting a reply that can still be asked for
_REPLY_CACHE = 64


class SessionMovedAway(Exception):
    """Raised inside a shard for ops addressed to an exported session.

    The server-side marker behind live migration: once ``export_session``
    has quiesced a session, any op still racing toward it (or arriving
    later for its tombstone) raises this, and both wires translate it into
    the *moved* envelope (:func:`repro.harmony.protocol.moved_response` on
    JSON, ``MSG_MOVED`` on binary) so the client re-resolves through the
    coordinator instead of retrying here.
    """

    def __init__(self, session: str) -> None:
        super().__init__(f"session {session!r} has moved")
        self.session = str(session)


def _plan_spec(plan: SamplingPlan) -> dict[str, Any] | None:
    """JSON form of a plan, or None when its estimator has no wire name."""
    name = _ESTIMATOR_NAMES.get(type(plan.estimator))
    if name is None:
        return None
    return {"k": int(plan.k), "estimator": name}


def _plan_from_spec(spec: Mapping[str, Any] | None) -> SamplingPlan | None:
    if not spec:
        return None
    estimator_cls = _SESSION_ESTIMATORS.get(spec.get("estimator", "min"))
    if estimator_cls is None:
        return None
    return SamplingPlan(int(spec.get("k", 1)), estimator_cls())


class ServerSession:
    """One named tuning session: tuner, sample ledger, measurement log.

    All mutating entry points take the session's own lock, so independent
    sessions on one server never contend with each other.
    """

    def __init__(
        self,
        tuner_factory: Callable[[ParameterSpace], BatchTuner],
        *,
        name: str = DEFAULT_SESSION,
        space: ParameterSpace | None = None,
        plan: SamplingPlan | None = None,
        reply_cache_size: int | None = None,
    ) -> None:
        self.name = name
        self._factory = tuner_factory
        self.space = space
        self._reply_cache_size = (
            _REPLY_CACHE if reply_cache_size is None else int(reply_cache_size)
        )
        if self._reply_cache_size < 1:
            raise ValueError(
                f"reply_cache_size must be >= 1, got {self._reply_cache_size}"
            )
        self.plan = plan if plan is not None else SamplingPlan()
        self.tuner: BatchTuner | None = None
        if space is not None:
            self.tuner = tuner_factory(space)
        #: set under the lock by ``export_session``: the session has been
        #: drained and shipped to another shard, so every later mutation
        #: must bounce the client back to the coordinator
        self.moved = False
        self._lock = threading.RLock()
        self._next_client = 0
        # active-batch state
        self._batch: list[np.ndarray] = []
        self._samples: list[list[float]] = []
        self._assigned: list[int] = []
        # measurement log: step index -> {client_id: time}
        self._log: dict[int, dict[int, float]] = defaultdict(dict)
        self.n_reports = 0
        # per-client exactly-once state: high-water mark + bounded reply
        # cache, keyed by client id; registration nonces map to client ids
        self._clients: dict[int, dict[str, Any]] = {}
        self._reg_nonces: dict[str, int] = {}
        #: WAL append callback installed by the hosting TuningServer
        #: (``None`` = not durable); called while the session lock is held
        #: so log order equals application order
        self._wal: Callable[[dict], None] | None = None

    # -- exactly-once bookkeeping -----------------------------------------------------

    def _append_wal(self, record: dict) -> None:
        if self._wal is not None:
            self._wal(record)

    def _check_moved(self) -> None:
        """Bounce mutations racing a live migration (caller holds the lock)."""
        if self.moved:
            raise SessionMovedAway(self.name)

    def _client_state(self, client_id: int) -> dict[str, Any]:
        state = self._clients.get(client_id)
        if state is None:
            state = self._clients[client_id] = {"hwm": -1, "cache": OrderedDict()}
        return state

    def _dedupe(self, client_id: Any, cseq: Any) -> tuple[bool, Any]:
        """``(is_duplicate, cached_reply_or_None)`` for a stamped request.

        Unstamped requests (no ``cseq``, or no usable client id) are never
        duplicates.  A duplicate whose reply has been evicted from the
        bounded cache returns ``(True, None)``; callers answer it with a
        generic duplicate ACK (reports) or an error (fetches, which need
        the exact original assignment back).
        """
        if cseq is None or client_id is None or int(client_id) < 0:
            return False, None
        state = self._client_state(int(client_id))
        if int(cseq) <= state["hwm"]:
            return True, state["cache"].get(int(cseq))
        return False, None

    def _record_reply(self, client_id: Any, cseq: Any, reply: Any) -> None:
        if cseq is None or client_id is None or int(client_id) < 0:
            return
        state = self._client_state(int(client_id))
        state["hwm"] = max(state["hwm"], int(cseq))
        cache = state["cache"]
        cache[int(cseq)] = reply
        while len(cache) > self._reply_cache_size:
            cache.popitem(last=False)

    # -- operations -------------------------------------------------------------------

    def op_register(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Bind (or validate) the parameter space and hand out a client id.

        Registration is exactly-once: a client may stamp the message with a
        ``nonce`` (any string) — re-registering with a known nonce returns
        the already-assigned id instead of minting a new one, so a retry
        after a lost ACK (or a reconnect after a server restart recovered
        from its WAL) resumes the same identity.  ``resume: <client_id>``
        does the same by explicit id.  Only id-minting registrations are
        WAL-logged; resumptions don't mutate anything.
        """
        version = message.get("version")
        if version is not None and int(version) != PROTOCOL_VERSION:
            return error_response(
                f"protocol version {version} not supported "
                f"(server speaks {PROTOCOL_VERSION})"
            )
        with self._lock:
            self._check_moved()
            specs = message.get("params")
            if self.space is None:
                if not specs:
                    return error_response("no parameter specs and no preset space")
                self.space = space_from_spec(specs)
                self.tuner = self._factory(self.space)
            elif specs:
                # Validate that late registrants agree on the space.
                candidate = space_from_spec(specs)
                if candidate.names != self.space.names:
                    return error_response(
                        f"parameter mismatch: {candidate.names} vs {self.space.names}"
                    )
            nonce = message.get("nonce")
            if nonce is not None and nonce in self._reg_nonces:
                return {
                    "ok": True, "client_id": self._reg_nonces[nonce],
                    "version": PROTOCOL_VERSION, "resumed": True,
                }
            resume = message.get("resume")
            if resume is not None:
                client_id = int(resume)
                if not 0 <= client_id < self._next_client:
                    return error_response(
                        f"cannot resume unknown client {client_id}"
                    )
                return {
                    "ok": True, "client_id": client_id,
                    "version": PROTOCOL_VERSION, "resumed": True,
                }
            client_id = self._next_client
            self._next_client += 1
            if nonce is not None:
                self._reg_nonces[nonce] = client_id
            record = {"op": "register", "session": self.name}
            if specs:
                record["params"] = specs
            if nonce is not None:
                record["nonce"] = nonce
            self._append_wal({"t": "op", "m": record})
            return {"ok": True, "client_id": client_id, "version": PROTOCOL_VERSION}

    def _ensure_batch(self) -> None:
        """Pull the next candidate batch from the tuner when idle."""
        assert self.tuner is not None
        if self._batch or self.tuner.converged or self.tuner.has_pending:
            return
        batch = self.tuner.ask()
        self._batch = batch
        self._samples = [[] for _ in batch]
        self._assigned = [0 for _ in batch]

    def op_fetch(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Assign the next configuration (exploration or exploitation).

        A stamped fetch (``cseq``) is exactly-once: retrying it returns
        the *original* assignment from the reply cache, so a client that
        lost the response (connection drop, server restart) neither leaks
        an in-flight slot nor perturbs the assignment stream.
        """
        with self._lock:
            self._check_moved()
            if self.tuner is None:
                return error_response("no client has registered a space yet")
            client_id = message.get("client_id")
            cseq = message.get("cseq")
            duplicate, cached = self._dedupe(client_id, cseq)
            if duplicate:
                if cached is not None and cached[0] == "resp":
                    return dict(cached[1])
                return error_response(
                    f"fetch cseq {cseq} was already applied but its reply "
                    "has been evicted from the cache"
                )
            self._ensure_batch()
            # Least-loaded candidate still short of K total samples
            # (collected + in flight).
            best_idx, best_load = -1, None
            for i in range(len(self._batch)):
                load = len(self._samples[i]) + self._assigned[i]
                if load < self.plan.k and (best_load is None or load < best_load):
                    best_idx, best_load = i, load
            if best_idx >= 0:
                self._assigned[best_idx] += 1
                point = self._batch[best_idx]
                response = {
                    "ok": True,
                    "point": [float(x) for x in point],
                    "token": best_idx,
                }
            else:
                # Everything in flight or converged: exploit the incumbent.
                point = self.tuner.best_point
                response = {
                    "ok": True,
                    "point": [float(x) for x in np.asarray(point, dtype=float)],
                    "token": -1,
                }
            self._record_reply(client_id, cseq, ("resp", dict(response)))
            record = {"op": "fetch", "session": self.name}
            if client_id is not None:
                record["client_id"] = int(client_id)
            if cseq is not None:
                record["cseq"] = int(cseq)
            self._append_wal({"t": "op", "m": record})
            return response

    def op_report(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Absorb one measurement; feed the tuner when the batch completes.

        A stamped report (``cseq``) at or below the client's high-water
        mark was already absorbed: it is ACKed as a duplicate without
        touching the tuner, the log, or the counters — retries after a
        lost ACK are exactly-once.
        """
        with self._lock:
            self._check_moved()
            if self.tuner is None:
                return error_response("no client has registered a space yet")
            client = int(message.get("client_id", -1))
            cseq = message.get("cseq")
            duplicate, cached = self._dedupe(client, cseq)
            if duplicate:
                if cached is not None and cached[0] == "resp":
                    return dict(cached[1])
                return {"ok": True, "duplicate": True}
            token = int(message["token"])
            time = float(message["time"])
            if not np.isfinite(time) or time < 0:
                return error_response(f"invalid time {time!r}")
            step = int(message.get("step", -1))
            if step >= 0:
                self._log[step][client] = time
            self.n_reports += 1
            response = {"ok": True}
            if token >= 0:
                if token >= len(self._batch):
                    # A late report for a batch that already completed (e.g.
                    # after a requeue raced a slow client): the measurement
                    # is logged above but no longer feeds the tuner.
                    response = {"ok": True, "stale": True}
                else:
                    self._assigned[token] = max(0, self._assigned[token] - 1)
                    self._samples[token].append(time)
                    if all(len(s) >= self.plan.k for s in self._samples):
                        estimates = [
                            self.plan.combine(np.asarray(s, dtype=float))
                            for s in self._samples
                        ]
                        self.tuner.tell(estimates)
                        self._batch = []
                        self._samples = []
                        self._assigned = []
            self._record_reply(client, cseq, ("resp", dict(response)))
            record = {
                "op": "report", "session": self.name, "client_id": client,
                "token": token, "time": time, "step": step,
            }
            if cseq is not None:
                record["cseq"] = int(cseq)
            self._append_wal({"t": "op", "m": record})
            return response

    # -- array-native batch operations (the binary wire fast path) --------------------

    def fetch_many_arrays(
        self, n: int, *, client_id: int = -1, cseq: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assign *n* configurations as ``(points, tokens)`` arrays.

        The array-native face of :meth:`op_fetch`: one lock acquisition and
        zero per-message dicts, but the *same* assignment policy executed
        the same number of times — a binary ``fetch_many`` frame and *n*
        JSON ``fetch`` messages drive the tuner identically.  ``points`` is
        ``(n, dim)`` float64, ``tokens`` is ``(n,)`` int32 (-1 = incumbent).
        A stamped group (``cseq``) is exactly-once like :meth:`op_fetch`:
        the whole frame dedupes as one unit and a retry gets the original
        block back from the reply cache.
        """
        if n < 1:
            raise ValueError(f"fetch_many needs n >= 1, got {n}")
        with self._lock:
            self._check_moved()
            if self.tuner is None:
                raise LookupError("no client has registered a space yet")
            duplicate, cached = self._dedupe(client_id, cseq)
            if duplicate:
                if cached is not None and cached[0] == "points":
                    return cached[1], cached[2]
                raise LookupError(
                    f"fetch_many cseq {cseq} was already applied but its "
                    "reply has been evicted from the cache"
                )
            points = np.empty((n, self.space.dimension), dtype=np.float64)
            tokens = np.empty(n, dtype=np.int32)
            k = self.plan.k
            for j in range(n):
                self._ensure_batch()
                batch = self._batch
                samples = self._samples
                assigned = self._assigned
                best_idx, best_load = -1, None
                for i in range(len(batch)):
                    load = len(samples[i]) + assigned[i]
                    if load < k and (best_load is None or load < best_load):
                        best_idx, best_load = i, load
                if best_idx >= 0:
                    assigned[best_idx] += 1
                    points[j] = batch[best_idx]
                    tokens[j] = best_idx
                else:
                    points[j] = np.asarray(self.tuner.best_point, dtype=float)
                    tokens[j] = -1
            self._record_reply(client_id, cseq, ("points", points, tokens))
            record: dict[str, Any] = {
                "t": "fetchm", "session": self.name,
                "client_id": int(client_id), "n": int(n),
            }
            if cseq is not None:
                record["cseq"] = int(cseq)
            self._append_wal(record)
            return points, tokens

    def report_many_arrays(
        self,
        tokens: np.ndarray,
        times: np.ndarray,
        *,
        client_id: int = -1,
        step: int = -1,
        cseq: int | None = None,
    ) -> tuple[int, int]:
        """Absorb paired token/time arrays; returns ``(n_ok, n_stale)``.

        Validation is vectorized and atomic: an invalid time anywhere in
        the group raises before *any* measurement is absorbed.  Absorption
        itself replays :meth:`op_report`'s per-measurement logic in order
        (including mid-group batch completion), so results are identical
        to the JSON path under paired seeding.  A stamped group (``cseq``)
        dedupes as one unit: a retried frame is ACKed with the original
        ``(n_ok, n_stale)`` without absorbing anything twice.
        """
        with self._lock:
            self._check_moved()
            if self.tuner is None:
                raise LookupError("no client has registered a space yet")
            duplicate, cached = self._dedupe(client_id, cseq)
            if duplicate:
                if cached is not None and cached[0] == "ack":
                    return cached[1], cached[2]
                return 0, 0
            times = np.asarray(times, dtype=float)
            tokens = np.asarray(tokens)
            if times.shape != tokens.shape or times.ndim != 1:
                raise ValueError(
                    f"got {times.shape} times for {tokens.shape} tokens"
                )
            finite = np.isfinite(times)
            if not finite.all() or bool((times < 0).any()):
                bad = times[~finite] if not finite.all() else times[times < 0]
                raise ValueError(f"invalid time {float(bad[0])!r}")
            client = int(client_id)
            if step >= 0 and times.size:
                # Same end state as op_report's per-message log writes:
                # one (step, client) cell, last measurement wins.
                self._log[step][client] = float(times[-1])
            self.n_reports += times.size
            n_stale = self._absorb_reports(tokens, times)
            n_ok = int(times.size) - n_stale
            self._record_reply(client_id, cseq, ("ack", n_ok, n_stale))
            record: dict[str, Any] = {
                "t": "reportm", "session": self.name,
                "client_id": int(client_id), "step": int(step),
                "tokens": [int(t) for t in tokens.tolist()],
                "times": times.tolist(),
            }
            if cseq is not None:
                record["cseq"] = int(cseq)
            self._append_wal(record)
            return n_ok, n_stale

    def _tell_batch(self) -> None:
        """Feed the completed batch to the tuner and clear the ledger."""
        estimates = [
            self.plan.combine(np.asarray(s, dtype=float))
            for s in self._samples
        ]
        self.tuner.tell(estimates)
        self._batch = []
        self._samples = []
        self._assigned = []

    def _absorb_reports_scalar(
        self, tokens: np.ndarray, times: np.ndarray
    ) -> int:
        """Reference absorption: op_report's per-measurement logic, in order.

        Kept as the semantic spec for :meth:`_absorb_reports` — the
        equivalence tests and the ``report_replay`` microbench drive both
        against identical session states and require identical results.
        Caller holds the lock and has already validated the arrays.
        """
        n_stale = 0
        k = self.plan.k
        for token, t in zip(tokens.tolist(), times.tolist()):
            if token < 0:
                continue
            if token >= len(self._batch):
                n_stale += 1
                continue
            self._assigned[token] = max(0, self._assigned[token] - 1)
            self._samples[token].append(t)
            if all(len(s) >= k for s in self._samples):
                self._tell_batch()
        return n_stale

    def _absorb_reports(self, tokens: np.ndarray, times: np.ndarray) -> int:
        """Vectorized absorption, bit-identical to the scalar reference.

        The ordered replay has exactly one structural event to find: the
        batch can complete *at most once* per group (completion clears
        ``_batch``, making every later non-negative token stale), and it
        completes at the position where the last still-deficient candidate
        receives its k-th sample.  Locating that position turns the
        per-report Python loop into a handful of array ops plus one
        bounded pass over the (small) candidate list.
        """
        tok = np.asarray(tokens, dtype=np.int64)
        valid = tok >= 0
        m = len(self._batch)
        if m == 0:
            return int(np.count_nonzero(valid))
        k = self.plan.k
        in_batch = valid & (tok < m)
        pos_in = np.flatnonzero(in_batch)
        if pos_in.size == 0:
            return int(np.count_nonzero(valid))
        tok_in = tok[pos_in]
        need = np.array(
            [max(0, k - len(s)) for s in self._samples], dtype=np.int64
        )
        deficient = np.flatnonzero(need)
        complete_at = -1
        if deficient.size == 0:
            # Already-satisfied batch (only reachable through a hand-built
            # restore): the scalar reference completes on the first append.
            complete_at = int(pos_in[0])
        elif np.all(np.bincount(tok_in, minlength=m)[deficient]
                    >= need[deficient]):
            # Every deficient candidate is satisfied within this group: the
            # batch completes at the latest of their need-th arrivals.  A
            # stable sort groups each candidate's arrivals in order, so the
            # need-th one sits at a fixed offset from its group start.
            order = np.argsort(tok_in, kind="stable")
            uniq, starts = np.unique(tok_in[order], return_index=True)
            at = np.searchsorted(uniq, deficient)
            hits = starts[at] + need[deficient] - 1
            complete_at = int(pos_in[order[hits]].max())
        if complete_at < 0:
            absorb = in_batch
            n_stale = int(np.count_nonzero(valid & ~in_batch))
        else:
            prefix = np.arange(tok.size) <= complete_at
            absorb = in_batch & prefix
            n_stale = int(np.count_nonzero(valid & ~absorb))
        absorbed_tok = tok[absorb]
        # One stable sort groups the absorbed samples per candidate; slicing
        # the bulk-converted list is what keeps the per-candidate work O(1)
        # plus its own appends (a masked scan per candidate would be O(n·m)).
        order = np.argsort(absorbed_tok, kind="stable")
        grouped_times = np.asarray(times)[absorb][order].tolist()
        uniq, starts = np.unique(absorbed_tok[order], return_index=True)
        bounds = starts.tolist() + [len(grouped_times)]
        for i, c in enumerate(uniq.tolist()):
            lo, hi = bounds[i], bounds[i + 1]
            self._samples[c].extend(grouped_times[lo:hi])
            self._assigned[c] = max(0, self._assigned[c] - (hi - lo))
        if complete_at >= 0:
            self._tell_batch()
        return n_stale

    def op_best(self) -> dict[str, Any]:
        """The current incumbent configuration and its estimate."""
        with self._lock:
            if self.tuner is None:
                return error_response("no client has registered a space yet")
            return {
                "ok": True,
                "point": [float(x) for x in self.tuner.best_point],
                "value": float(self.tuner.best_value),
                "converged": self.tuner.converged,
            }

    def op_requeue(self) -> dict[str, Any]:
        """Clear in-flight assignment counts (crash recovery).

        If a client fetches an assignment and never reports (process died,
        network gone), the candidate's in-flight count would keep the batch
        from ever completing and every later fetch would fall through to
        exploitation.  ``requeue`` forgets the in-flight bookkeeping so the
        outstanding samples are handed out again; duplicate late reports
        remain harmless (they just add extra samples).
        """
        with self._lock:
            self._check_moved()
            requeued = sum(self._assigned)
            self._assigned = [0 for _ in self._assigned]
            self._append_wal({"t": "op", "m": {"op": "requeue", "session": self.name}})
            return {"ok": True, "requeued": requeued}

    def op_checkpoint(self) -> dict[str, Any]:
        """Snapshot the whole session (JSON-compatible).

        Includes the tuner's search state (for tuners that support
        ``to_dict``, like PRO), the in-flight batch's collected samples, and
        the measurement log — everything needed to survive a restart.
        In-flight *assignments* are deliberately dropped (a restart means
        the clients' fetches are void; they refetch after restore).
        """
        with self._lock:
            if self.tuner is None or self.space is None:
                return error_response("nothing to checkpoint yet")
            if not hasattr(self.tuner, "to_dict"):
                return error_response(
                    f"{type(self.tuner).__name__} does not support checkpointing"
                )
            from repro.space.serialize import space_to_spec

            snapshot = {
                "space": space_to_spec(self.space),
                "tuner": self.tuner.to_dict(),
                "batch": [[float(x) for x in p] for p in self._batch],
                "samples": [list(map(float, s)) for s in self._samples],
                "log": {
                    str(step): {str(c): t for c, t in clients.items()}
                    for step, clients in self._log.items()
                },
                "n_reports": self.n_reports,
                "next_client": self._next_client,
            }
            return {"ok": True, "snapshot": snapshot}

    def op_restore(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Rebuild the session from an :meth:`op_checkpoint` snapshot."""
        snapshot = message.get("snapshot")
        if not isinstance(snapshot, Mapping):
            return error_response("restore needs a 'snapshot' mapping")
        with self._lock:
            space = space_from_spec(snapshot["space"])
            probe = self._factory(space)
            if not hasattr(type(probe), "from_dict"):
                return error_response(
                    f"{type(probe).__name__} does not support restore"
                )
            self.space = space
            self.tuner = type(probe).from_dict(space, snapshot["tuner"])
            self._batch = [np.asarray(p, dtype=float) for p in snapshot["batch"]]
            self._samples = [list(s) for s in snapshot["samples"]]
            self._assigned = [0 for _ in self._batch]
            self._log = defaultdict(dict)
            for step, clients in snapshot.get("log", {}).items():
                for client, t in clients.items():
                    self._log[int(step)][int(client)] = float(t)
            self.n_reports = int(snapshot.get("n_reports", 0))
            self._next_client = int(snapshot.get("next_client", 0))
            self._append_wal({
                "t": "op",
                "m": {
                    "op": "restore", "session": self.name,
                    "snapshot": {k: v for k, v in snapshot.items()},
                },
            })
            return {"ok": True}

    # -- WAL snapshot state -------------------------------------------------------

    def _serialize_reply(self, reply: Any) -> list:
        kind = reply[0]
        if kind == "resp":
            return ["resp", reply[1]]
        if kind == "points":
            return [
                "points",
                [[float(x) for x in p] for p in reply[1]],
                [int(t) for t in reply[2]],
            ]
        return ["ack", int(reply[1]), int(reply[2])]

    def _deserialize_reply(self, entry: list) -> Any:
        kind = entry[0]
        if kind == "resp":
            return ("resp", dict(entry[1]))
        if kind == "points":
            points = [np.asarray(p, dtype=float) for p in entry[1]]
            return ("points", points, [int(t) for t in entry[2]])
        return ("ack", int(entry[1]), int(entry[2]))

    def can_snapshot(self) -> bool:
        """Whether :meth:`state_dict` would succeed (tuner checkpointable)."""
        with self._lock:
            return self.tuner is None or hasattr(self.tuner, "to_dict")

    def state_dict(self) -> dict[str, Any]:
        """Complete JSON-compatible session state for WAL snapshots.

        Unlike :meth:`op_checkpoint` (which deliberately drops in-flight
        assignments and client identity so an operator-driven restore starts
        clean), this captures *everything* — assignments, per-client
        exactly-once state, registration nonces, and the sampling plan — so
        a WAL replay that resumes from the snapshot is indistinguishable
        from one that replayed the full op history.
        """
        with self._lock:
            if self.tuner is not None and not hasattr(self.tuner, "to_dict"):
                raise TypeError(
                    f"{type(self.tuner).__name__} does not support checkpointing"
                )
            from repro.space.serialize import space_to_spec

            return {
                "space": space_to_spec(self.space) if self.space is not None else None,
                "tuner": self.tuner.to_dict() if self.tuner is not None else None,
                "plan": _plan_spec(self.plan),
                "batch": [[float(x) for x in p] for p in self._batch],
                "samples": [list(map(float, s)) for s in self._samples],
                "assigned": [int(a) for a in self._assigned],
                "log": {
                    str(step): {str(c): t for c, t in clients.items()}
                    for step, clients in self._log.items()
                },
                "n_reports": self.n_reports,
                "next_client": self._next_client,
                "nonces": dict(self._reg_nonces),
                "clients": {
                    str(cid): {
                        "hwm": state["hwm"],
                        "cache": [
                            [cseq, self._serialize_reply(reply)]
                            for cseq, reply in state["cache"].items()
                        ],
                    }
                    for cid, state in self._clients.items()
                },
            }

    def restore_state(self, snapshot: Mapping[str, Any]) -> None:
        """Rebuild the full session from a :meth:`state_dict` snapshot."""
        with self._lock:
            plan = _plan_from_spec(snapshot.get("plan"))
            if plan is not None:
                self.plan = plan
            if snapshot.get("space") is not None:
                space = space_from_spec(snapshot["space"])
                self.space = space
                if snapshot.get("tuner") is not None:
                    probe = self._factory(space)
                    self.tuner = type(probe).from_dict(space, snapshot["tuner"])
                else:
                    self.tuner = self._factory(space)
            self._batch = [np.asarray(p, dtype=float) for p in snapshot["batch"]]
            self._samples = [list(s) for s in snapshot["samples"]]
            self._assigned = [int(a) for a in snapshot["assigned"]]
            self._log = defaultdict(dict)
            for step, clients in snapshot.get("log", {}).items():
                for client, t in clients.items():
                    self._log[int(step)][int(client)] = float(t)
            self.n_reports = int(snapshot.get("n_reports", 0))
            self._next_client = int(snapshot.get("next_client", 0))
            self._reg_nonces = {
                str(nonce): int(cid)
                for nonce, cid in snapshot.get("nonces", {}).items()
            }
            self._clients = {}
            for cid, state in snapshot.get("clients", {}).items():
                cache: OrderedDict = OrderedDict()
                for cseq, entry in state["cache"]:
                    cache[int(cseq)] = self._deserialize_reply(entry)
                self._clients[int(cid)] = {"hwm": int(state["hwm"]), "cache": cache}

    def op_status(self) -> dict[str, Any]:
        """Progress counters for this session."""
        with self._lock:
            if self.tuner is None:
                return {"ok": True, "registered": False, "session": self.name}
            return {
                "ok": True,
                "session": self.name,
                "registered": True,
                "converged": self.tuner.converged,
                "n_evaluations": self.tuner.n_evaluations,
                "n_reports": self.n_reports,
                "outstanding": len(self._batch),
            }

    # -- server-side metric reconstruction -------------------------------------------

    def step_times(self) -> np.ndarray:
        """Per-step barrier times T_k = max over clients (Eq. 1).

        Only steps for which at least one client reported are included, in
        step order.
        """
        with self._lock:
            steps = sorted(self._log)
            return np.array(
                [max(self._log[s].values()) for s in steps], dtype=float
            )

    def total_time(self) -> float:
        """Σ_k T_k over the reconstructed barrier times (Eq. 2)."""
        times = self.step_times()
        return float(times.sum()) if times.size else 0.0


class TuningServer:
    """Hosts named tuning sessions behind one dict-message protocol.

    Single-session use is unchanged from the original server: construct,
    ``handle`` messages without a ``session`` field, read ``tuner`` /
    ``n_reports`` / ``step_times()`` — they all address the built-in
    ``"default"`` session.  Multi-session use adds the ``open_session`` /
    ``close_session`` / ``list_sessions`` ops and a ``session`` field on
    every per-session message.

    Pass a :class:`~repro.obs.MetricsRegistry` as *metrics* to count
    requests per op, batch frames, and per-op handle latency (bounded
    reservoir), and a :class:`~repro.obs.Tracer` as *tracer* to emit
    ``server.request`` / ``server.batch`` / ``server.session`` events.
    Both default to off so the hot path stays lean.
    """

    def __init__(
        self,
        tuner_factory: Callable[[ParameterSpace], BatchTuner],
        *,
        space: ParameterSpace | None = None,
        plan: SamplingPlan | None = None,
        metrics: "Any | None" = None,
        tracer: "Any | None" = None,
        binproto: bool = True,
        reply_cache_size: int | None = None,
        service_delay_s: float = 0.0,
        admission: "Any | None" = None,
    ) -> None:
        self._factory = tuner_factory
        #: optional :class:`~repro.harmony.admission.AdmissionController`:
        #: when set, the transports price every frame in message units and
        #: answer work beyond the pending budget with ``busy`` +
        #: ``retry_after`` instead of queueing it (see
        #: :func:`repro.harmony.transport.respond_frames`).  Assignable
        #: after construction too (e.g. onto a WAL-recovered server).
        self.admission = admission
        #: per-client reply-cache bound handed to every session
        #: (None = the module default, ``_REPLY_CACHE``)
        self.reply_cache_size = reply_cache_size
        #: modeled per-frame service time (seconds).  When non-zero, every
        #: frame the transports dispatch holds the server-global service
        #: lock for this long (a GIL-releasing sleep), emulating a
        #: CPU-bound handler: one process serves at most 1/delay frames/s
        #: no matter how many connections it has, while *separate shard
        #: processes* overlap freely.  The fleet benchmark uses this to
        #: measure routing/aggregation scaling honestly on one box.
        self.service_delay_s = float(service_delay_s)
        self._service_lock = threading.Lock()
        #: advertise the binary wire format in register responses; clients
        #: only switch to binary frames after seeing the advertisement, so
        #: a server hosted behind a JSON-only transport sets this False
        self.binproto = bool(binproto)
        self._default_plan = plan if plan is not None else SamplingPlan()
        #: WAL writer attached via :meth:`attach_wal` (``None`` = not durable)
        self._wal: "Any | None" = None
        #: True while :func:`repro.harmony.wal.recover_server` replays the
        #: log: suppresses re-logging, metrics, and trace emission so
        #: recovery is invisible to observability and the WAL itself
        self._wal_replaying = False
        self._snapshot_lock = threading.Lock()
        self._wal_snapshot_blocked = False
        self._sessions: dict[str, ServerSession] = {}
        self._sessions_lock = threading.Lock()
        #: tombstones for sessions exported by live migration: any op still
        #: addressed here is answered with the *moved* envelope until the
        #: name is reopened or adopted back
        self._moved: set[str] = set()
        self.metrics = metrics
        self.tracer = tracer
        self._sessions[DEFAULT_SESSION] = self._new_session(
            DEFAULT_SESSION, space=space, plan=self._default_plan
        )

    def _new_session(
        self,
        name: str,
        *,
        space: ParameterSpace | None = None,
        plan: SamplingPlan | None = None,
    ) -> ServerSession:
        session = ServerSession(
            self._factory, name=name, space=space,
            plan=plan if plan is not None else self._default_plan,
            reply_cache_size=self.reply_cache_size,
        )
        session._wal = self.wal_append
        return session

    def model_service(self, n_frames: int = 1) -> None:
        """Model *n_frames* of service time under the server-global lock.

        Called by the transports once per dispatched wire frame when
        ``service_delay_s`` is non-zero; a no-op otherwise (the common
        case — one predictable branch).
        """
        if self.service_delay_s <= 0.0 or n_frames <= 0:
            return
        with self._service_lock:
            time.sleep(self.service_delay_s * n_frames)

    # -- single-session compatibility surface ------------------------------------

    @property
    def default_session(self) -> ServerSession:
        """The session addressed by messages without a ``session`` field."""
        return self._sessions[DEFAULT_SESSION]

    @property
    def space(self) -> ParameterSpace | None:
        """The default session's parameter space (None before register)."""
        return self.default_session.space

    @property
    def plan(self) -> SamplingPlan:
        """The default session's multi-sampling plan."""
        return self.default_session.plan

    @property
    def tuner(self) -> BatchTuner | None:
        """The default session's tuner (None before register)."""
        return self.default_session.tuner

    @property
    def n_reports(self) -> int:
        """Measurements absorbed by the default session."""
        return self.default_session.n_reports

    def step_times(self) -> np.ndarray:
        """The default session's reconstructed barrier times (Eq. 1)."""
        return self.default_session.step_times()

    def total_time(self) -> float:
        """The default session's Σ_k T_k (Eq. 2)."""
        return self.default_session.total_time()

    # -- session management -------------------------------------------------------

    def session(self, name: str) -> ServerSession | None:
        """Look up a session by name (None when absent)."""
        with self._sessions_lock:
            return self._sessions.get(name)

    def session_names(self) -> list[str]:
        """Currently open session names, sorted."""
        with self._sessions_lock:
            return sorted(self._sessions)

    def moved_sessions(self) -> list[str]:
        """Tombstoned (exported, not yet reopened) session names, sorted."""
        with self._sessions_lock:
            return sorted(self._moved)

    def load_report(self) -> dict[str, Any]:
        """Raw load snapshot for the fleet's heartbeat load reports.

        Cumulative counters, not rates: the :class:`~repro.fleet.shard`
        agent differences successive snapshots into EWMA rates so the
        coordinator's planner sees recent throughput, not lifetime totals.
        """
        with self._sessions_lock:
            sessions = dict(self._sessions)
        report: dict[str, Any] = {
            "sessions": len(sessions),
            "reports": {
                name: int(session.n_reports)
                for name, session in sessions.items()
            },
        }
        if self.admission is not None:
            report["pending"] = int(self.admission.pending)
        return report

    def open_session(
        self,
        name: str,
        *,
        space: ParameterSpace | None = None,
        plan: SamplingPlan | None = None,
    ) -> ServerSession:
        """Create (or return, if identical-named) the session *name*."""
        with self._sessions_lock:
            existing = self._sessions.get(name)
            if existing is not None:
                return existing
            session = self._new_session(name, space=space, plan=plan)
            self._sessions[name] = session
            self._moved.discard(name)
        record: dict[str, Any] = {"op": "open_session", "session": name}
        spec = _plan_spec(plan) if plan is not None else None
        if spec is not None:
            record.update(spec)
        if space is not None:
            from repro.space.serialize import space_to_spec

            record["params"] = space_to_spec(space)
        self.wal_append({"t": "op", "m": record})
        self._emit("server.session", action="open", session=name)
        return session

    def _op_open_session(self, message: Mapping[str, Any]) -> dict[str, Any]:
        name = message.get("session")
        if not isinstance(name, str) or not name:
            return error_response("open_session needs a non-empty 'session' name")
        plan = self._default_plan
        if "k" in message or "estimator" in message:
            estimator_name = message.get("estimator", "min")
            estimator_cls = _SESSION_ESTIMATORS.get(estimator_name)
            if estimator_cls is None:
                return error_response(
                    f"unknown estimator {estimator_name!r}; "
                    f"known: {sorted(_SESSION_ESTIMATORS)}"
                )
            plan = SamplingPlan(int(message.get("k", 1)), estimator_cls())
        space = None
        if message.get("params"):
            space = space_from_spec(message["params"])
        with self._sessions_lock:
            created = name not in self._sessions
            if created:
                self._sessions[name] = self._new_session(name, space=space, plan=plan)
                self._moved.discard(name)
        if created:
            record: dict[str, Any] = {"op": "open_session", "session": name}
            if "k" in message or "estimator" in message:
                record["k"] = int(message.get("k", 1))
                record["estimator"] = message.get("estimator", "min")
            if message.get("params"):
                record["params"] = message["params"]
            self.wal_append({"t": "op", "m": record})
            self._emit("server.session", action="open", session=name)
        return {"ok": True, "session": name, "created": created}

    def _op_adopt_session(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Take over a migrated session: full ``state_dict`` state transfer.

        The fleet coordinator sends this when re-homing a dead shard's
        sessions onto this server: the state is everything the per-session
        WAL snapshot captures — tuner, in-flight batch, measurement log,
        and per-client exactly-once state (high-water marks, reply caches,
        registration nonces) — so clients of the dead shard resume here
        bit-identically, retries and all.  Adopting replaces any existing
        session of the same name (the coordinator owns placement; this
        server is not in a position to argue).  The record is WAL-logged
        whole, so a later recovery of *this* shard rebuilds the adopted
        session too.
        """
        name = message.get("session")
        if not isinstance(name, str) or not name:
            return error_response("adopt_session needs a non-empty 'session' name")
        state = message.get("state")
        if not isinstance(state, Mapping):
            return error_response("adopt_session needs a 'state' snapshot dict")
        session = self._new_session(name)
        try:
            session.restore_state(state)
        except Exception as exc:
            return error_response(
                f"could not restore adopted session {name!r}: "
                f"{type(exc).__name__}: {exc}"
            )
        with self._sessions_lock:
            self._sessions[name] = session
            self._moved.discard(name)
        self.wal_append({
            "t": "op",
            "m": {"op": "adopt_session", "session": name, "state": dict(state)},
        })
        self._emit("server.session", action="adopt", session=name)
        if self.metrics is not None and not self._wal_replaying:
            self.metrics.inc("server.adopted_sessions")
        return {"ok": True, "session": name, "adopted": True}

    def _op_export_session(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Quiesce and ship a session: the source half of live migration.

        The inverse of :meth:`_op_adopt_session`.  Under the session's own
        lock the session is marked *moved* (so any op that already holds a
        reference raises :class:`SessionMovedAway` instead of mutating
        post-export state) and its full ``state_dict`` is cut — in-flight
        batch, measurement log, per-client cseq high-water marks, reply
        caches, and registration nonces all travel.  The name is then
        tombstoned: later ops addressed here get the *moved* envelope until
        the coordinator's registry flip points clients at the new owner.
        """
        name = message.get("session")
        if not isinstance(name, str) or not name:
            return error_response("export_session needs a non-empty 'session' name")
        if name == DEFAULT_SESSION:
            return error_response("the default session cannot be exported")
        with self._sessions_lock:
            session = self._sessions.get(name)
        if session is None:
            return error_response(f"no such session {name!r}")
        if not session.can_snapshot():
            return error_response(
                f"session {name!r} does not support checkpointing; "
                "it cannot be exported"
            )
        with session._lock:
            session.moved = True
            state = session.state_dict()
        with self._sessions_lock:
            self._sessions.pop(name, None)
            self._moved.add(name)
        self.wal_append({
            "t": "op", "m": {"op": "export_session", "session": name},
        })
        self._emit("server.session", action="export", session=name)
        if self.metrics is not None and not self._wal_replaying:
            self.metrics.inc("server.exported_sessions")
        return {"ok": True, "session": name, "state": state}

    def _op_close_session(self, message: Mapping[str, Any]) -> dict[str, Any]:
        name = message.get("session")
        if name == DEFAULT_SESSION:
            return error_response("the default session cannot be closed")
        with self._sessions_lock:
            session = self._sessions.pop(name, None)
        if session is None:
            return error_response(f"no such session {name!r}")
        self.wal_append({"t": "op", "m": {"op": "close_session", "session": name}})
        self._emit("server.session", action="close", session=name)
        return {"ok": True, "session": name, "n_reports": session.n_reports}

    def _op_list_sessions(self) -> dict[str, Any]:
        with self._sessions_lock:
            sessions = dict(self._sessions)
        return {
            "ok": True,
            "sessions": {
                name: session.op_status() for name, session in sorted(sessions.items())
            },
        }

    def _op_metrics(self) -> dict[str, Any]:
        if self.metrics is None:
            return error_response("metrics collection is not enabled on this server")
        return {"ok": True, "metrics": self.metrics.snapshot()}

    # -- durability (write-ahead log) ---------------------------------------------

    def attach_wal(self, wal: "Any") -> None:
        """Make the server durable: every mutation appends to *wal*.

        *wal* is duck-typed (a :class:`repro.harmony.wal.WalWriter`): it
        needs ``append(record)``, ``commit()``, ``flush()``, ``close()``,
        and ``should_snapshot()``.  Sessions log through
        :meth:`wal_append`, transports group-commit through
        :meth:`commit_wal` before writing responses, so an acknowledged
        request is always on disk first.
        """
        self._wal = wal
        self._wal_snapshot_blocked = False

    def wal_append(self, record: dict) -> None:
        """Append one durability record (no-op when no WAL is attached).

        Called by sessions while they hold their own lock, so WAL order
        equals application order.  Suppressed during recovery replay —
        the records being replayed are already in the log.
        """
        if self._wal is None or self._wal_replaying:
            return
        self._wal.append(record)
        if self.metrics is not None:
            self.metrics.inc("wal.appends")
        self._emit("wal.append", t=str(record.get("t")), session=str(
            record.get("session") or record.get("m", {}).get("session", "")
        ))

    def commit_wal(self) -> None:
        """Group-commit point: make everything appended so far durable.

        Transports call this once per received chunk *before* writing any
        response bytes back, which is what makes an ACK imply durability
        under ``sync='batch'`` with only one fsync per chunk.
        """
        if self._wal is None or self._wal_replaying:
            return
        self._wal.commit()
        self.maybe_snapshot_wal()

    def flush_wal(self) -> None:
        """Flush + fsync pending appends (transport stop / shutdown path)."""
        if self._wal is not None:
            self._wal.flush()

    def close_wal(self) -> None:
        """Flush and close the WAL (server teardown)."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def maybe_snapshot_wal(self) -> bool:
        """Snapshot + truncate when the log has grown past its threshold."""
        if (
            self._wal is None
            or self._wal_snapshot_blocked
            or not self._wal.should_snapshot()
        ):
            return False
        return self.snapshot_wal()

    def snapshot_wal(self) -> bool:
        """Write a full-state snapshot record and drop older segments.

        Holds the sessions lock *and* every session's lock for the whole
        build-and-write so no op record can land between the state cut
        and the snapshot record (which would be discarded on replay).
        Returns False (and stops retrying) when any session's tuner does
        not support checkpointing.
        """
        from contextlib import ExitStack

        if self._wal is None:
            return False
        with self._snapshot_lock:
            if self._wal is None:
                return False
            with ExitStack() as stack:
                stack.enter_context(self._sessions_lock)
                sessions = dict(self._sessions)
                for session in sessions.values():
                    stack.enter_context(session._lock)
                try:
                    state = {
                        name: session.state_dict()
                        for name, session in sessions.items()
                    }
                except TypeError:
                    self._wal_snapshot_blocked = True
                    return False
                if self._moved:
                    state["__moved__"] = sorted(self._moved)
                self._wal.snapshot(state)
        if self.metrics is not None:
            self.metrics.inc("wal.snapshots")
        self._emit("wal.snapshot", sessions=len(state))
        return True

    def state_dict(self) -> dict[str, Any]:
        """Full multi-session state (what a WAL snapshot record carries).

        Migration tombstones travel under the reserved ``"__moved__"`` key
        (session names may not start with that spelling in practice; the
        restore side pops it before iterating sessions) so a recovered
        shard keeps answering *moved* for sessions it exported.
        """
        with self._sessions_lock:
            sessions = dict(self._sessions)
            moved = sorted(self._moved)
        state: dict[str, Any] = {
            name: session.state_dict() for name, session in sessions.items()
        }
        if moved:
            state["__moved__"] = moved
        return state

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Rebuild every session from a :meth:`state_dict` snapshot."""
        state = dict(state)
        moved = state.pop("__moved__", ())
        with self._sessions_lock:
            self._moved.update(str(name) for name in moved)
            for name, snapshot in state.items():
                session = self._sessions.get(name)
                if session is None:
                    session = self._new_session(name)
                    self._sessions[name] = session
                self._moved.discard(name)
                session.restore_state(snapshot)

    def apply_wal_record(self, record: Mapping[str, Any]) -> None:
        """Re-apply one logged mutation during recovery replay.

        ``op`` records route through :meth:`handle` (the ordinary code
        path, so replay exercises exactly the logic that produced the
        log); ``fetchm`` / ``reportm`` records route through the
        array-native session methods the binary wire uses.
        """
        kind = record.get("t")
        if kind == "op":
            self.handle(record["m"])
            return
        name = record.get("session", DEFAULT_SESSION)
        session = self.session(name)
        if session is None:
            return
        if kind == "fetchm":
            session.fetch_many_arrays(
                int(record["n"]),
                client_id=int(record.get("client_id", -1)),
                cseq=record.get("cseq"),
            )
        elif kind == "reportm":
            session.report_many_arrays(
                np.asarray(record["tokens"], dtype=np.int32),
                np.asarray(record["times"], dtype=np.float64),
                client_id=int(record.get("client_id", -1)),
                step=int(record["step"]),
                cseq=record.get("cseq"),
            )

    # -- observability ------------------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        if self.tracer is not None and not self._wal_replaying:
            self.tracer.emit(kind, **fields)

    def observe_batch(self, n_msgs: int) -> None:
        """Record one batch frame (called by the transports' dispatcher)."""
        if self.metrics is not None:
            self.metrics.inc("server.batch_frames")
            self.metrics.inc("server.batch_msgs", n_msgs)
        self._emit("server.batch", n_msgs=n_msgs)

    def observe_shed(self, n_msgs: int) -> None:
        """Count *n_msgs* message units refused by admission control.

        Called by the transports once per shed chunk; surfaces through
        the metrics registry (and thus the Prometheus endpoint) as
        ``server.shed_msgs`` / ``server.shed_events`` counters plus a
        ``server.admission_pending`` gauge.
        """
        if self.metrics is not None:
            self.metrics.inc("server.shed_msgs", n_msgs)
            self.metrics.inc("server.shed_events")
            if self.admission is not None:
                self.metrics.gauge(
                    "server.admission_pending", self.admission.pending
                )

    def observe_binary(self, op: str, n_msgs: int) -> None:
        """Record one binary frame (called by binproto's dispatcher)."""
        if self.metrics is not None:
            self.metrics.inc("server.bin_frames")
            self.metrics.inc("server.bin_msgs", n_msgs)
            self.metrics.inc(f"server.op.{op}", n_msgs)
        self._emit("server.batch", n_msgs=n_msgs, wire="binary")

    # -- protocol entry point ------------------------------------------------------

    _SERVER_OPS = frozenset({
        "open_session", "close_session", "list_sessions", "metrics",
        "adopt_session", "export_session",
    })

    def handle(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Process one protocol message and return the response dict."""
        op = None
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        try:
            op = message.get("op")
            response = self._route(op, message)
        except SessionMovedAway as exc:
            response = moved_response(exc.session)
        except Exception as exc:  # protocol boundary: never let the server die
            response = error_response(f"{type(exc).__name__}: {exc}")
        if self._wal_replaying:
            # Recovery replay re-enters handle(); the original requests
            # already counted when they first ran.
            return response
        if self.metrics is not None:
            self.metrics.inc("server.requests")
            self.metrics.inc(f"server.op.{op}")
            if not response.get("ok", False):
                self.metrics.inc("server.errors")
            self.metrics.observe("server.handle_s", time.perf_counter() - t0)
            self.metrics.gauge("server.sessions", len(self._sessions))
        if self.tracer is not None:
            self._emit(
                "server.request",
                op=str(op),
                session=str(message.get("session", DEFAULT_SESSION)),
                ok=bool(response.get("ok", False)),
            )
        return response

    def _route(self, op: Any, message: Mapping[str, Any]) -> dict[str, Any]:
        if op == "open_session":
            return self._op_open_session(message)
        if op == "close_session":
            return self._op_close_session(message)
        if op == "adopt_session":
            return self._op_adopt_session(message)
        if op == "export_session":
            return self._op_export_session(message)
        if op == "list_sessions":
            return self._op_list_sessions()
        if op == "metrics":
            return self._op_metrics()
        name = message.get("session", DEFAULT_SESSION)
        with self._sessions_lock:
            session = self._sessions.get(name)
            if session is None and name in self._moved:
                return moved_response(name)
        if session is None:
            return error_response(
                f"no such session {name!r}; open it with op 'open_session'"
            )
        if op == "register":
            response = session.op_register(message)
            if response.get("ok", False) and self.binproto:
                # The negotiation half of the binary wire format: clients
                # only send binary frames after seeing this advertisement.
                from repro.harmony.binproto import BINPROTO_VERSION

                response["binproto"] = BINPROTO_VERSION
            return response
        if op == "fetch":
            return session.op_fetch(message)
        if op == "report":
            return session.op_report(message)
        if op == "best":
            return session.op_best()
        if op == "status":
            return session.op_status()
        if op == "requeue":
            return session.op_requeue()
        if op == "checkpoint":
            return session.op_checkpoint()
        if op == "restore":
            return session.op_restore(message)
        return error_response(f"unknown op {op!r}")
