"""The tuning server: the strategy host of the Active Harmony model.

Applications (clients) register their tunable parameters, then loop:

1. ``fetch`` — receive the configuration to run their next time step with;
2. run the time step, measuring its wall time;
3. ``report`` — send the measurement back.

The server multiplexes the tuner's candidate batch over whatever clients
show up: each candidate needs K samples (the §5.2 multi-sampling), and when
several clients run concurrently the samples are collected *in parallel*
across clients — the "no additional time burden" case the paper describes
for 64 processors and K = 10.  Clients beyond the outstanding work are
assigned the incumbent best configuration (exploitation).

The server is transport-agnostic: it consumes plain-dict messages (see
:meth:`TuningServer.handle`) and is thread-safe, so the same instance can
sit behind the in-process transport or the TCP transport.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.base import BatchTuner
from repro.core.sampling import SamplingPlan
from repro.space import ParameterSpace
from repro.space.serialize import space_from_spec

__all__ = ["TuningServer"]


class TuningServer:
    """Holds the tuner, the sample ledger, and the measurement log."""

    def __init__(
        self,
        tuner_factory: Callable[[ParameterSpace], BatchTuner],
        *,
        space: ParameterSpace | None = None,
        plan: SamplingPlan | None = None,
    ) -> None:
        self._factory = tuner_factory
        self.space = space
        self.plan = plan if plan is not None else SamplingPlan()
        self.tuner: BatchTuner | None = None
        if space is not None:
            self.tuner = tuner_factory(space)
        self._lock = threading.RLock()
        self._next_client = 0
        # active-batch state
        self._batch: list[np.ndarray] = []
        self._samples: list[list[float]] = []
        self._assigned: list[int] = []
        # measurement log: step index -> {client_id: time}
        self._log: dict[int, dict[int, float]] = defaultdict(dict)
        self.n_reports = 0

    # -- protocol entry point ------------------------------------------------------

    def handle(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Process one protocol message and return the response dict."""
        try:
            op = message.get("op")
            if op == "register":
                return self._op_register(message)
            if op == "fetch":
                return self._op_fetch(message)
            if op == "report":
                return self._op_report(message)
            if op == "best":
                return self._op_best()
            if op == "status":
                return self._op_status()
            if op == "requeue":
                return self._op_requeue()
            if op == "checkpoint":
                return self._op_checkpoint()
            if op == "restore":
                return self._op_restore(message)
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # protocol boundary: never let the server die
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- operations -------------------------------------------------------------------

    def _op_register(self, message: Mapping[str, Any]) -> dict[str, Any]:
        with self._lock:
            specs = message.get("params")
            if self.space is None:
                if not specs:
                    return {"ok": False, "error": "no parameter specs and no preset space"}
                self.space = space_from_spec(specs)
                self.tuner = self._factory(self.space)
            elif specs:
                # Validate that late registrants agree on the space.
                candidate = space_from_spec(specs)
                if candidate.names != self.space.names:
                    return {
                        "ok": False,
                        "error": f"parameter mismatch: {candidate.names} vs {self.space.names}",
                    }
            client_id = self._next_client
            self._next_client += 1
            return {"ok": True, "client_id": client_id}

    def _ensure_batch(self) -> None:
        """Pull the next candidate batch from the tuner when idle."""
        assert self.tuner is not None
        if self._batch or self.tuner.converged or self.tuner.has_pending:
            return
        batch = self.tuner.ask()
        self._batch = batch
        self._samples = [[] for _ in batch]
        self._assigned = [0 for _ in batch]

    def _op_fetch(self, message: Mapping[str, Any]) -> dict[str, Any]:
        with self._lock:
            if self.tuner is None:
                return {"ok": False, "error": "no client has registered a space yet"}
            self._ensure_batch()
            # Least-loaded candidate still short of K total samples
            # (collected + in flight).
            best_idx, best_load = -1, None
            for i in range(len(self._batch)):
                load = len(self._samples[i]) + self._assigned[i]
                if load < self.plan.k and (best_load is None or load < best_load):
                    best_idx, best_load = i, load
            if best_idx >= 0:
                self._assigned[best_idx] += 1
                point = self._batch[best_idx]
                return {
                    "ok": True,
                    "point": [float(x) for x in point],
                    "token": best_idx,
                }
            # Everything in flight or converged: exploit the incumbent.
            point = self.tuner.best_point
            return {
                "ok": True,
                "point": [float(x) for x in np.asarray(point, dtype=float)],
                "token": -1,
            }

    def _op_report(self, message: Mapping[str, Any]) -> dict[str, Any]:
        with self._lock:
            if self.tuner is None:
                return {"ok": False, "error": "no client has registered a space yet"}
            token = int(message["token"])
            time = float(message["time"])
            if not np.isfinite(time) or time < 0:
                return {"ok": False, "error": f"invalid time {time!r}"}
            client = int(message.get("client_id", -1))
            step = int(message.get("step", -1))
            if step >= 0:
                self._log[step][client] = time
            self.n_reports += 1
            if token >= 0:
                if token >= len(self._batch):
                    # A late report for a batch that already completed (e.g.
                    # after a requeue raced a slow client): the measurement
                    # is logged above but no longer feeds the tuner.
                    return {"ok": True, "stale": True}
                self._assigned[token] = max(0, self._assigned[token] - 1)
                self._samples[token].append(time)
                if all(len(s) >= self.plan.k for s in self._samples):
                    estimates = [
                        self.plan.combine(np.asarray(s, dtype=float))
                        for s in self._samples
                    ]
                    self.tuner.tell(estimates)
                    self._batch = []
                    self._samples = []
                    self._assigned = []
            return {"ok": True}

    def _op_best(self) -> dict[str, Any]:
        with self._lock:
            if self.tuner is None:
                return {"ok": False, "error": "no client has registered a space yet"}
            return {
                "ok": True,
                "point": [float(x) for x in self.tuner.best_point],
                "value": float(self.tuner.best_value),
                "converged": self.tuner.converged,
            }

    def _op_requeue(self) -> dict[str, Any]:
        """Clear in-flight assignment counts (crash recovery).

        If a client fetches an assignment and never reports (process died,
        network gone), the candidate's in-flight count would keep the batch
        from ever completing and every later fetch would fall through to
        exploitation.  ``requeue`` forgets the in-flight bookkeeping so the
        outstanding samples are handed out again; duplicate late reports
        remain harmless (they just add extra samples).
        """
        with self._lock:
            requeued = sum(self._assigned)
            self._assigned = [0 for _ in self._assigned]
            return {"ok": True, "requeued": requeued}

    def _op_checkpoint(self) -> dict[str, Any]:
        """Snapshot the whole tuning service (JSON-compatible).

        Includes the tuner's search state (for tuners that support
        ``to_dict``, like PRO), the in-flight batch's collected samples, and
        the measurement log — everything needed to survive a restart.
        In-flight *assignments* are deliberately dropped (a restart means
        the clients' fetches are void; they refetch after restore).
        """
        with self._lock:
            if self.tuner is None or self.space is None:
                return {"ok": False, "error": "nothing to checkpoint yet"}
            if not hasattr(self.tuner, "to_dict"):
                return {
                    "ok": False,
                    "error": f"{type(self.tuner).__name__} does not support "
                    "checkpointing",
                }
            from repro.space.serialize import space_to_spec

            snapshot = {
                "space": space_to_spec(self.space),
                "tuner": self.tuner.to_dict(),
                "batch": [[float(x) for x in p] for p in self._batch],
                "samples": [list(map(float, s)) for s in self._samples],
                "log": {
                    str(step): {str(c): t for c, t in clients.items()}
                    for step, clients in self._log.items()
                },
                "n_reports": self.n_reports,
                "next_client": self._next_client,
            }
            return {"ok": True, "snapshot": snapshot}

    def _op_restore(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Rebuild the service from a :meth:`_op_checkpoint` snapshot."""
        snapshot = message.get("snapshot")
        if not isinstance(snapshot, Mapping):
            return {"ok": False, "error": "restore needs a 'snapshot' mapping"}
        with self._lock:
            space = space_from_spec(snapshot["space"])
            probe = self._factory(space)
            if not hasattr(type(probe), "from_dict"):
                return {
                    "ok": False,
                    "error": f"{type(probe).__name__} does not support restore",
                }
            self.space = space
            self.tuner = type(probe).from_dict(space, snapshot["tuner"])
            self._batch = [
                np.asarray(p, dtype=float) for p in snapshot["batch"]
            ]
            self._samples = [list(s) for s in snapshot["samples"]]
            self._assigned = [0 for _ in self._batch]
            self._log = defaultdict(dict)
            for step, clients in snapshot.get("log", {}).items():
                for client, t in clients.items():
                    self._log[int(step)][int(client)] = float(t)
            self.n_reports = int(snapshot.get("n_reports", 0))
            self._next_client = int(snapshot.get("next_client", 0))
            return {"ok": True}

    def _op_status(self) -> dict[str, Any]:
        with self._lock:
            if self.tuner is None:
                return {"ok": True, "registered": False}
            return {
                "ok": True,
                "registered": True,
                "converged": self.tuner.converged,
                "n_evaluations": self.tuner.n_evaluations,
                "n_reports": self.n_reports,
                "outstanding": len(self._batch),
            }

    # -- server-side metric reconstruction -------------------------------------------

    def step_times(self) -> np.ndarray:
        """Per-step barrier times T_k = max over clients (Eq. 1).

        Only steps for which at least one client reported are included, in
        step order.
        """
        with self._lock:
            steps = sorted(self._log)
            return np.array(
                [max(self._log[s].values()) for s in steps], dtype=float
            )

    def total_time(self) -> float:
        """Σ_k T_k over the reconstructed barrier times (Eq. 2)."""
        times = self.step_times()
        return float(times.sum()) if times.size else 0.0
