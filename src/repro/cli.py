"""Command-line interface: tune, serve, trace, surface, figures.

Examples::

    python -m repro tune --tuner pro --rho 0.25 --k 3 --budget 300
    python -m repro tune --trials 10 --json results.json
    python -m repro tune --trials 10 --trace run.jsonl
    python -m repro serve --port 7077 --k 3 --estimator min
    python -m repro trace run.jsonl
    python -m repro trace --nodes 16 --iterations 400
    python -m repro surface --fixed nodes=32
    python -m repro figures fig10 --trials 40

Everything runs against the built-in GS2 surrogate/database workload (the
paper's evaluation subject); the library API is the route for custom
objectives.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

import numpy as np

from repro.apps.database import PerformanceDatabase
from repro.apps.gs2 import GS2Surrogate
from repro.core.sampling import (
    MeanEstimator,
    MedianEstimator,
    MinEstimator,
    SamplingPlan,
)
from repro.experiments import _fmt
from repro.experiments.common import TUNER_NAMES, tuner_factory
from repro.experiments.parallel import EXECUTOR_NAMES, FAILURE_POLICIES
from repro.experiments.runner import run_sweep
from repro.harmony.session import TuningSession
from repro.report.ascii import heatmap, histogram, line_plot, sparkline
from repro.variability.heavytail import tail_report, truncate
from repro.variability.models import NoNoise, ParetoNoise

__all__ = ["main", "build_parser"]

_ESTIMATORS = {
    "min": MinEstimator,
    "mean": MeanEstimator,
    "median": MedianEstimator,
}


class _TuneCell:
    """Picklable session factory for ``tune --trials N`` sweeps.

    Process-pool execution pickles the factory with each task chunk, so
    this must be a module-level class rather than a closure over argparse
    state.
    """

    def __init__(self, tuner_name, space, db, noise, plan, budget):
        self.tuner_name = tuner_name
        self.space = space
        self.db = db
        self.noise = noise
        self.plan = plan
        self.budget = budget

    def __call__(self, seed: int) -> TuningSession:
        tuner = tuner_factory(self.tuner_name, rng=seed)(self.space)
        return TuningSession(
            tuner, self.db, noise=self.noise, plan=self.plan,
            budget=self.budget, rng=seed,
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online parameter tuning with Parallel Rank Ordering "
        "(SC'05 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tune = sub.add_parser("tune", help="tune a built-in workload online")
    p_tune.add_argument("--workload", choices=["gs2", "stencil"], default="gs2")
    p_tune.add_argument("--tuner", choices=TUNER_NAMES, default="pro")
    p_tune.add_argument("--rho", type=float, default=0.2,
                        help="idle throughput of the Pareto noise (0 = none)")
    p_tune.add_argument("--alpha", type=float, default=1.7,
                        help="Pareto tail index of the noise")
    p_tune.add_argument("--k", type=int, default=1, help="samples per evaluation")
    p_tune.add_argument("--estimator", choices=sorted(_ESTIMATORS), default="min")
    p_tune.add_argument("--budget", type=int, default=300,
                        help="application time steps")
    p_tune.add_argument("--db-fraction", type=float, default=1.0,
                        help="lattice coverage of the performance database")
    p_tune.add_argument("--trials", type=int, default=1)
    _add_executor_options(p_tune)
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--json", type=Path, default=None,
                        help="write the sweep result as JSON")
    p_tune.add_argument("--plot", action="store_true",
                        help="render the step-time series (single trial only)")
    p_tune.add_argument(
        "--cache-stats", action="store_true",
        help="report the performance database's memo/lookup counters after "
        "the run (serial/thread executors only: process workers query "
        "their own database copies)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="host the online tuning service on a TCP socket",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7077,
                         help="TCP port (0 = let the OS pick a free one)")
    p_serve.add_argument("--transport", choices=["async", "threaded"],
                         default="async",
                         help="asyncio event loop (default) or one thread "
                         "per connection")
    p_serve.add_argument("--tuner", choices=TUNER_NAMES, default="pro")
    p_serve.add_argument("--k", type=int, default=1,
                         help="samples per candidate (multi-sampling)")
    p_serve.add_argument("--estimator", choices=sorted(_ESTIMATORS),
                         default="min")
    p_serve.add_argument("--wire", choices=["binary", "json"], default="binary",
                         help="wire formats accepted on the port: 'binary' "
                         "sniffs JSON lines and binary frames per frame "
                         "(and advertises the binary fast path at "
                         "register); 'json' disables binary frames")
    p_serve.add_argument("--workload", choices=["none", "gs2", "stencil", "bench"],
                         default="none",
                         help="preset the parameter space from a built-in "
                         "workload so clients can register bare")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--duration", type=float, default=None,
                         metavar="SECONDS",
                         help="serve this long, then drain and exit "
                         "(default: until Ctrl-C)")
    p_serve.add_argument("--port-file", type=Path, default=None,
                         help="write the bound port here once listening "
                         "(lets scripts wait for readiness)")
    p_serve.add_argument("--trace", type=Path, default=None,
                         help="record server.request/server.batch events "
                         "to a JSONL trace on shutdown")
    p_serve.add_argument("--wal-dir", type=Path, default=None,
                         help="make the service durable: append every state "
                         "mutation to a write-ahead log in this directory; "
                         "if it already holds segments, recover the server "
                         "from them by replay before listening")
    p_serve.add_argument("--sync", choices=["always", "batch", "off"],
                         default="batch",
                         help="WAL durability mode: fsync per append, group "
                         "commit per request chunk (default), or OS page "
                         "cache only (kill-safe, not power-fail-safe)")
    p_serve.add_argument("--wal-snapshot-bytes", type=int, default=64 << 20,
                         help="snapshot+truncate the WAL once it grows past "
                         "this many bytes")
    p_serve.add_argument("--crash-at", default=None, metavar="KIND:N",
                         help="fault injection for the crash-recovery tests: "
                         "SIGKILL this process at the Nth WAL event; KIND is "
                         "append, commit, torn, or snapshot")
    p_serve.add_argument("--reply-cache", type=int, default=None,
                         metavar="N",
                         help="per-client exactly-once reply cache size "
                         "(default 64); retries older than the cache window "
                         "get an explicit evicted error")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve Prometheus text-format scrapes at "
                         "GET /metrics on this port (0 = ephemeral)")
    p_serve.add_argument("--coordinator", default=None, metavar="HOST:PORT",
                         help="join a tuning fleet: register this server as "
                         "a shard with the coordinator, renew its lease via "
                         "heartbeats, and exit when the lease is revoked")
    p_serve.add_argument("--shard-id", type=int, default=None,
                         help="fixed shard id to register under (default: "
                         "coordinator-assigned)")
    p_serve.add_argument("--service-delay-us", type=int, default=0,
                         metavar="US",
                         help="model this many microseconds of CPU-bound "
                         "service time per wire frame (benchmarking aid: "
                         "makes per-process throughput delay-bound so fleet "
                         "scaling is measurable on one box)")
    p_serve.add_argument("--max-pending", type=int, default=None, metavar="N",
                         help="admission control: bound in-flight work to N "
                         "message units; excess requests are shed with a "
                         "'busy' error and a retry-after hint (default: "
                         "unbounded, no admission control)")
    p_serve.add_argument("--max-session-pending", type=int, default=None,
                         metavar="N",
                         help="additionally cap any one session's in-flight "
                         "work at N units (requires --max-pending)")
    p_serve.add_argument("--shed-policy", choices=["reject", "fair", "rate"],
                         default="reject",
                         help="how --max-pending sheds: 'reject' refuses "
                         "everything past the global budget; 'fair' also "
                         "splits the budget evenly across active sessions "
                         "so one hot session cannot starve the rest; "
                         "'rate' is a token bucket (capacity --max-pending, "
                         "refilled at --refill-rate) bounding sustained "
                         "throughput instead of instantaneous depth")
    p_serve.add_argument("--refill-rate", type=float, default=None,
                         metavar="UNITS_PER_S",
                         help="token-bucket refill rate in message units "
                         "per second (required with --shed-policy rate)")
    p_serve.add_argument("--retry-after-ms", type=float, default=50.0,
                         metavar="MS",
                         help="base backoff hint sent with 'busy' errors; "
                         "scaled up with queue depth (default: 50)")

    p_fleet = sub.add_parser(
        "fleet",
        help="launch a tuning fleet: coordinator + N shard servers, then "
        "run a sweep of sessions across them",
    )
    p_fleet.add_argument("--shards", type=int, default=2,
                         help="number of shard server processes")
    p_fleet.add_argument("--sessions", type=int, default=None,
                         help="tuning sessions to sweep across the fleet "
                         "(default: 2 per shard)")
    p_fleet.add_argument("--steps", type=int, default=8,
                         help="lock-step tuning iterations per session")
    p_fleet.add_argument("--dir", type=Path, default=None, metavar="DIR",
                         help="fleet state directory: per-shard WALs, the "
                         "coordinator registry WAL, logs, port files "
                         "(default: a temporary directory)")
    p_fleet.add_argument("--transport", choices=["async", "threaded"],
                         default="threaded")
    p_fleet.add_argument("--wire", choices=["binary", "json"],
                         default="binary")
    p_fleet.add_argument("--tuner", choices=TUNER_NAMES, default="pro")
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--k", type=int, default=1)
    p_fleet.add_argument("--estimator", choices=sorted(_ESTIMATORS),
                         default="min")
    p_fleet.add_argument("--lease-s", type=float, default=2.0,
                         help="shard lease duration; heartbeats renew at a "
                         "third of this")
    p_fleet.add_argument("--no-wal", action="store_true",
                         help="run shards without write-ahead logs (faster, "
                         "but a killed shard's sessions re-home fresh "
                         "instead of bit-identically)")
    p_fleet.add_argument("--kill-shard", type=int, default=None,
                         metavar="SHARD",
                         help="demo: SIGKILL this shard midway through the "
                         "sweep and let the fleet re-home its sessions")
    p_fleet.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="scrapeable coordinator /metrics endpoint")
    p_fleet.add_argument("--baseline-check", action="store_true",
                         help="re-run the sweep on one in-process server "
                         "and verify the fleet matched it bit-identically")
    p_fleet.add_argument("--max-pending", type=int, default=None, metavar="N",
                         help="per-shard admission budget (passed through "
                         "to every shard's --max-pending)")
    p_fleet.add_argument("--rebalance", action="store_true",
                         help="enable proactive load-aware rebalancing: the "
                         "coordinator watches heartbeat load reports and "
                         "live-migrates hot sessions onto quiet shards")
    p_fleet.add_argument("--skew", choices=["none", "uniform", "zipf",
                                            "pareto"],
                         default="none",
                         help="shape the per-session sweep load (zipf/pareto "
                         "concentrate work on the first sessions — the "
                         "workload --rebalance is built to spread out)")
    p_fleet.add_argument("--join", action="append", default=None,
                         metavar="HOST:PORT",
                         help="attach an externally started 'repro serve "
                         "--coordinator' shard instead of spawning localhost "
                         "subprocesses (repeatable; with --join, --shards is "
                         "ignored and start blocks until every listed shard "
                         "registers)")
    p_fleet.add_argument("--coordinator-port", type=int, default=0,
                         metavar="PORT",
                         help="fixed coordinator listen port (default: "
                         "ephemeral; pick one so --join shards know where "
                         "to register)")

    p_load = sub.add_parser(
        "loadgen",
        help="drive a live tuning server with reproducible open- or "
        "closed-loop load and report latency percentiles against an SLO",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, required=True,
                        help="port of a running 'repro serve' or the fleet "
                        "coordinator")
    p_load.add_argument("--mode", choices=["closed", "open"],
                        default="closed",
                        help="closed: each session blocks on the server "
                        "(concurrency-driven); open: requests arrive on a "
                        "schedule regardless of server speed (rate-driven)")
    p_load.add_argument("--wire", choices=["binary", "json"],
                        default="binary")
    p_load.add_argument("--sessions", default="8", metavar="N[,N...]",
                        help="session-count ramp: one load point per "
                        "comma-separated value (default: 8)")
    p_load.add_argument("--steps", type=int, default=4,
                        help="closed loop: fetch/report rounds per session")
    p_load.add_argument("--duration", type=float, default=5.0, metavar="S",
                        help="open loop: seconds of offered load per point")
    p_load.add_argument("--rate", type=float, default=100.0,
                        help="open loop: mean arrivals per second")
    p_load.add_argument("--arrival",
                        choices=["uniform", "poisson", "pareto"],
                        default="poisson",
                        help="open loop: interarrival process (pareto is "
                        "heavy-tailed: bursts at the same mean rate)")
    p_load.add_argument("--tail-alpha", type=float, default=1.5,
                        help="pareto arrivals: tail index, must be > 1")
    p_load.add_argument("--connections", type=int, default=4,
                        help="sockets (and host threads); sessions are "
                        "multiplexed over them")
    p_load.add_argument("--batch", type=int, default=1,
                        help="configurations per fetch (batched protocol "
                        "when > 1)")
    p_load.add_argument("--busy-retries", type=int, default=16,
                        help="closed loop: busy sheds absorbed per request "
                        "before counting it against the error budget")
    p_load.add_argument("--slo-ms", type=float, default=100.0,
                        help="SLO: p99 latency bound in milliseconds")
    p_load.add_argument("--error-budget", type=float, default=0.01,
                        help="SLO: max fraction of requests shed or failed")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--json", type=Path, default=None, metavar="FILE",
                        help="also write the per-point reports as JSON")

    p_trace = sub.add_parser(
        "trace",
        help="summarize a recorded JSONL trace, or simulate a cluster trace",
    )
    p_trace.add_argument(
        "path", type=Path, nargs="?", default=None,
        help="JSONL trace recorded with --trace; omit to simulate a "
        "fixed-config cluster trace instead",
    )
    p_trace.add_argument("--nodes", type=int, default=16)
    p_trace.add_argument("--iterations", type=int, default=400)
    p_trace.add_argument("--seed", type=int, default=11)
    p_trace.add_argument("--show", type=int, default=4,
                         help="processors to render as sparklines")

    p_surface = sub.add_parser("surface", help="render a GS2 surface slice")
    p_surface.add_argument("--x", dest="x_name", default="ntheta")
    p_surface.add_argument("--y", dest="y_name", default="negrid")
    p_surface.add_argument("--fixed", default="nodes=32",
                           help="remaining parameter, e.g. nodes=32")

    p_fig = sub.add_parser("figures", help="regenerate a paper figure's data")
    p_fig.add_argument("figure", choices=["fig01", "fig08", "fig09", "fig10"])
    p_fig.add_argument("--trials", type=int, default=None)
    _add_executor_options(p_fig)
    return parser


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    """Sweep-parallelism and fault-tolerance flags shared by the
    experiment subcommands."""
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker count for parallel sweep execution "
        "(implies --executor process unless one is given)",
    )
    parser.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="sweep execution backend (default: serial; "
        "results are identical across executors for the same seed)",
    )
    parser.add_argument(
        "--failure-policy", choices=FAILURE_POLICIES, default="raise",
        help="what to do with a failed trial: abort the sweep (raise, "
        "default), drop it from the aggregates (skip), or re-dispatch it "
        "with its original seed before dropping (retry)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-trial wall-clock allowance; an over-budget trial is "
        "abandoned and handled per --failure-policy",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="recovery rounds for failed trials "
        "(default: 2 under --failure-policy retry, else 0)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command under cProfile and print the top-25 "
        "cumulative-time entries",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="record a structured JSONL event trace of the run; inspect "
        "it later with `repro trace PATH`",
    )


def _resolve_executor(args: argparse.Namespace) -> tuple[str, int | None]:
    """Fold --jobs/--executor into (executor, jobs) with serial defaults."""
    executor = args.executor
    jobs = args.jobs
    if executor is None:
        # Bare `-j N` means "give me N-way parallelism": processes are the
        # safe default for the CPU-bound simulation sweeps.
        executor = "serial" if jobs in (None, 1) else "process"
    if executor == "serial":
        jobs = None
    return executor, jobs


def _sweep_kwargs(args: argparse.Namespace) -> dict:
    """The run_sweep execution/fault kwargs encoded in the shared flags."""
    executor, jobs = _resolve_executor(args)
    return {
        "executor": executor,
        "jobs": jobs,
        "failure_policy": args.failure_policy,
        "retries": args.retries,
        "task_timeout": args.task_timeout,
        "trace": getattr(args, "trace", None),
    }


def _print_cache_stats(stats: dict) -> None:
    """One summary line of database memo/lookup effectiveness."""
    queries = stats.get("n_exact", 0) + stats.get("n_interpolated", 0)
    hits = stats.get("n_memo_hits", 0)
    rate = hits / queries if queries else 0.0
    print(
        f"db cache          : {queries} queries, {hits} memo hits "
        f"({rate:.1%}), {stats.get('n_exact', 0)} exact / "
        f"{stats.get('n_interpolated', 0)} interpolated, "
        f"memo_len={stats.get('memo_len', 0)}"
    )


# -- command handlers ------------------------------------------------------------


def _cmd_tune(args: argparse.Namespace) -> int:
    if getattr(args, "workload", "gs2") == "stencil":
        from repro.apps.stencil import StencilSurrogate

        surrogate = StencilSurrogate()
    else:
        surrogate = GS2Surrogate()
    space = surrogate.space()
    db = PerformanceDatabase.from_function(
        surrogate, space, fraction=args.db_fraction, rng=args.seed
    )
    noise = (
        ParetoNoise(rho=args.rho, alpha=args.alpha) if args.rho > 0 else NoNoise()
    )
    plan = SamplingPlan(args.k, _ESTIMATORS[args.estimator]())

    if args.trials == 1:
        from repro.obs import trace as obs_trace

        tracer = obs_trace.Tracer(label="session") if args.trace else None
        tuner = tuner_factory(args.tuner, rng=args.seed)(space)
        result = TuningSession(
            tuner, db, noise=noise, plan=plan, budget=args.budget,
            rng=args.seed, tracer=tracer,
        ).run()
        if tracer is not None:
            events = obs_trace.canonical_events(tracer.drain(), strip=False)
            obs_trace.write_jsonl(events, args.trace)
            print(f"wrote {args.trace} ({len(events)} events)")
        print(f"tuner            : {args.tuner}")
        print(f"best config      : {space.as_dict(result.best_point)}")
        print(f"noise-free cost  : {result.best_true_cost:.4f} s/iteration")
        print(f"Total_Time       : {result.total_time():.2f} s")
        print(f"NTT (Eq. 23)     : {result.normalized_total_time():.2f} s")
        print(f"converged at     : {result.converged_at}")
        if args.plot:
            print()
            print(
                line_plot(
                    {"T_k": (None, result.step_times)},
                    title="per-step barrier time",
                    height=12,
                )
            )
        if args.cache_stats:
            _print_cache_stats(db.cache_stats())
        if args.json:
            args.json.write_text(result.to_json() + "\n")
            print(f"wrote {args.json}")
        return 0

    cell = _TuneCell(args.tuner, space, db, noise, plan, args.budget)
    sweep = run_sweep(
        {args.tuner: cell}, trials=args.trials, rng=args.seed,
        cache_stats=db if args.cache_stats else None,
        **_sweep_kwargs(args),
    )
    print(
        _fmt.format_table(
            ["tuner", "mean NTT", "std NTT", "mean final cost", "converged"],
            sweep.rows(),
        )
    )
    if sweep.failures:
        print(f"failed trials     : {len(sweep.failures)} "
              f"(policy {args.failure_policy})")
    if args.cache_stats:
        _print_cache_stats(sweep.meta.get("db_cache", {}))
    if args.json:
        args.json.write_text(json.dumps(sweep.to_dict()) + "\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.harmony.aio import AsyncTcpServerTransport
    from repro.harmony.server import TuningServer
    from repro.harmony.transport import TcpServerTransport
    from repro.obs import MetricsRegistry
    from repro.obs import trace as obs_trace

    space = None
    if args.workload == "gs2":
        space = GS2Surrogate().space()
    elif args.workload == "stencil":
        from repro.apps.stencil import StencilSurrogate

        space = StencilSurrogate().space()
    elif args.workload == "bench":
        # The throughput benchmark's space: tiny and integer, so serving
        # overhead (framing, dispatch) dominates and the wire is what gets
        # measured.
        from repro.space import IntParameter, ParameterSpace

        space = ParameterSpace(
            [IntParameter("a", -10, 10), IntParameter("b", -10, 10)]
        )
    if args.reply_cache is not None and args.reply_cache < 1:
        print(f"error: reply_cache_size must be >= 1, got {args.reply_cache}",
              file=sys.stderr)
        return 2
    plan = SamplingPlan(args.k, _ESTIMATORS[args.estimator]())
    metrics = MetricsRegistry(max_samples=4096)
    tracer = obs_trace.Tracer(label="server") if args.trace else None
    if args.wal_dir is not None:
        from repro.harmony.wal import recover_server

        # recover_server handles the empty-directory case too: no segments
        # means nothing to replay, and a fresh WalWriter is attached either
        # way, so first boot and restart share one code path.
        server = recover_server(
            tuner_factory(args.tuner, rng=args.seed),
            args.wal_dir,
            space=space, plan=plan, metrics=metrics, tracer=tracer,
            binproto=args.wire == "binary",
            reply_cache_size=args.reply_cache,
            service_delay_s=args.service_delay_us / 1e6,
            sync=args.sync,
            snapshot_bytes=args.wal_snapshot_bytes,
            crash_at=args.crash_at,
        )
    else:
        server = TuningServer(
            tuner_factory(args.tuner, rng=args.seed),
            space=space, plan=plan, metrics=metrics, tracer=tracer,
            binproto=args.wire == "binary",
            reply_cache_size=args.reply_cache,
            service_delay_s=args.service_delay_us / 1e6,
        )
    if args.max_session_pending is not None and args.max_pending is None:
        print("error: --max-session-pending requires --max-pending",
              file=sys.stderr)
        return 2
    if args.shed_policy == "rate" and (
        args.max_pending is None or args.refill_rate is None
    ):
        print("error: --shed-policy rate requires --max-pending and "
              "--refill-rate", file=sys.stderr)
        return 2
    if args.refill_rate is not None and args.shed_policy != "rate":
        print("error: --refill-rate only applies to --shed-policy rate",
              file=sys.stderr)
        return 2
    if args.max_pending is not None:
        from repro.harmony.admission import AdmissionController

        # Attached post-construction so WAL recovery and fresh boot share
        # the code path; the transports pick it up via the server handle.
        server.admission = AdmissionController(
            args.max_pending,
            max_session_pending=args.max_session_pending,
            policy=args.shed_policy,
            retry_after_s=args.retry_after_ms / 1e3,
            refill_rate=args.refill_rate,
        )
    transport_cls = (
        AsyncTcpServerTransport if args.transport == "async"
        else TcpServerTransport
    )
    with transport_cls(
        server, host=args.host, port=args.port, wire=args.wire
    ) as transport:
        print(f"tuning service ({args.transport}, wire={args.wire}) "
              f"listening on {args.host}:{transport.port}")
        print(f"tuner {args.tuner}, K={args.k} ({args.estimator}), "
              f"workload preset: {args.workload}")
        endpoint = None
        if args.metrics_port is not None:
            from repro.obs.prom import MetricsEndpoint

            endpoint = MetricsEndpoint(
                metrics, host=args.host, port=args.metrics_port
            ).start()
            print(f"metrics scrapeable at "
                  f"http://{args.host}:{endpoint.port}/metrics")
        agent = None
        if args.coordinator is not None:
            from repro.fleet.shard import ShardAgent

            chost, _, cport = args.coordinator.rpartition(":")
            agent = ShardAgent(
                (chost or "127.0.0.1", int(cport)),
                host=args.host, port=transport.port,
                wal_dir=args.wal_dir, shard_id=args.shard_id,
                metrics=metrics, tracer=tracer,
                load_fn=server.load_report,
            )
            shard = agent.start()
            print(f"joined fleet at {args.coordinator} as shard {shard} "
                  f"(lease {agent.lease_s:g}s)")
        if args.port_file is not None:
            args.port_file.write_text(f"{transport.port}\n")
        deadline = (
            _time.monotonic() + args.duration
            if args.duration is not None else None
        )
        try:
            while deadline is None or _time.monotonic() < deadline:
                if agent is not None and agent.revoked.is_set():
                    print("lease revoked by coordinator; draining...")
                    break
                _time.sleep(
                    0.1 if deadline is None
                    else min(0.1, max(0.0, deadline - _time.monotonic()))
                )
        except KeyboardInterrupt:
            print("\ndraining...")
        if agent is not None:
            agent.stop()
        if endpoint is not None:
            endpoint.stop()
    server.close_wal()
    snapshot = metrics.snapshot()
    counters = snapshot["counters"]
    print(f"requests handled  : {counters.get('server.requests', 0)} "
          f"({counters.get('server.errors', 0)} errors)")
    print(f"batch frames      : {counters.get('server.batch_frames', 0)} "
          f"({counters.get('server.batch_msgs', 0)} messages)")
    print(f"binary frames     : {counters.get('server.bin_frames', 0)} "
          f"({counters.get('server.bin_msgs', 0)} messages)")
    if args.max_pending is not None:
        print(f"load shed         : {counters.get('server.shed_msgs', 0)} "
              f"messages ({counters.get('server.shed_events', 0)} events), "
              f"peak pending {server.admission.peak_pending}/"
              f"{args.max_pending}")
    if args.wal_dir is not None:
        print(f"wal               : {counters.get('wal.appends', 0)} appends, "
              f"{counters.get('wal.snapshots', 0)} snapshots, "
              f"{counters.get('wal.replayed_records', 0)} replayed")
    print(f"sessions          : {', '.join(server.session_names())}")
    handle = snapshot["histograms"].get("server.handle_s")
    if handle and "p50" in handle:
        print(f"handle latency    : p50 {handle['p50'] * 1e6:.0f} us, "
              f"p99 {handle['p99'] * 1e6:.0f} us")
    if tracer is not None:
        events = obs_trace.canonical_events(tracer.drain(), strip=False)
        obs_trace.write_jsonl(events, args.trace)
        print(f"wrote {args.trace} ({len(events)} events)")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import tempfile

    from repro.fleet.launch import (
        FleetSupervisor,
        bench_space,
        session_workload,
        single_server_baseline,
        sweep_results,
    )

    n_shards = args.shards
    join = None
    if args.join:
        join = []
        for spec in args.join:
            host, _, port = spec.rpartition(":")
            join.append((host or "127.0.0.1", int(port)))
        n_shards = len(join)
    n_sessions = (
        args.sessions if args.sessions is not None else 2 * n_shards
    )
    sessions = [f"sweep-{i}" for i in range(n_sessions)]
    steps = [args.steps] * n_sessions
    if args.skew != "none":
        if args.baseline_check:
            print("error: --skew reshapes per-session work, so there is no "
                  "matching single-server baseline; drop --baseline-check",
                  file=sys.stderr)
            return 2
        from repro.loadgen import session_weights

        weights = session_weights(n_sessions, dist=args.skew)
        steps = [max(2, round(args.steps * w * n_sessions)) for w in weights]
        print(f"skewed sweep ({args.skew}): per-session steps {steps}")
    stack = contextlib.ExitStack()
    with stack:
        base = (
            args.dir if args.dir is not None
            else Path(stack.enter_context(tempfile.TemporaryDirectory(
                prefix="repro-fleet-"
            )))
        )
        fleet = stack.enter_context(FleetSupervisor(
            n_shards, base_dir=base,
            tuner=args.tuner, seed=args.seed, k=args.k,
            estimator=args.estimator,
            transport=args.transport, wire=args.wire,
            lease_s=args.lease_s, wal=not args.no_wal,
            max_pending=args.max_pending,
            rebalance=args.rebalance,
            join=join,
            coordinator_port=args.coordinator_port,
        ))
        print(f"fleet up: coordinator at {fleet.host}:{fleet.coordinator_port}, "
              f"{n_shards} shard(s){' (joined)' if join else ''}, "
              f"state under {base}")
        endpoint = None
        if args.metrics_port is not None:
            from repro.obs.prom import MetricsEndpoint

            endpoint = MetricsEndpoint(
                fleet.metrics, host=fleet.host, port=args.metrics_port
            ).start()
            stack.callback(endpoint.stop)
            print(f"coordinator metrics at "
                  f"http://{fleet.host}:{endpoint.port}/metrics")

        results: dict = {}
        killed = False
        for idx, name in enumerate(sessions):
            if (args.kill_shard is not None and not killed
                    and idx >= n_sessions // 2):
                print(f"kill-a-shard demo: SIGKILL shard {args.kill_shard}")
                fleet.kill_shard(args.kill_shard)
                killed = True
            client = fleet.client(name)
            client.open_session(name, k=args.k, estimator=args.estimator)
            client.register(bench_space())
            session_workload(client, idx, steps=steps[idx], seed=args.seed)
            results[name] = sweep_results(client)
            client.transport.close()
            print(f"  {name}: best {results[name]['best_cost']:.4f} "
                  f"(ready={results[name]['ready']})")
        status = fleet.fleet_status()
        alive = sum(1 for s in status["shards"].values() if s["alive"])
        print(f"fleet status: {alive}/{len(status['shards'])} shards alive, "
              f"{len(status['sessions'])} sessions placed")
        counters = fleet.metrics.snapshot()["counters"]
        for key in ("fleet.locates", "fleet.heartbeats",
                    "fleet.expired_shards", "fleet.rehomed_sessions",
                    "fleet.migrations", "fleet.migration_failures"):
            if counters.get(key):
                print(f"  {key:24s}: {counters[key]}")
        if args.rebalance and "rebalance" in status:
            reb = status["rebalance"]
            print(f"  rebalance: tick {reb['tick']}, "
                  f"hot shard {reb['hot_shard']}, "
                  f"{len(reb['inflight'])} migration(s) in flight")
        if args.baseline_check:
            baseline = single_server_baseline(
                sessions, tuner=args.tuner, seed=args.seed,
                k=args.k, estimator=args.estimator, steps=args.steps,
            )
            if baseline == results:
                print("baseline check: fleet results bit-identical to "
                      "single-server")
            else:
                mismatched = [n for n in sessions if baseline[n] != results[n]]
                print(f"baseline check FAILED: {len(mismatched)} session(s) "
                      f"diverged: {', '.join(mismatched)}")
                return 1
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen import LoadGenerator, LoadgenConfig, SloPolicy

    try:
        ramp = [int(s) for s in str(args.sessions).split(",") if s.strip()]
    except ValueError:
        print(f"error: --sessions must be comma-separated integers, "
              f"got {args.sessions!r}", file=sys.stderr)
        return 2
    if not ramp or any(n < 1 for n in ramp):
        print(f"error: session counts must be >= 1, got {args.sessions!r}",
              file=sys.stderr)
        return 2
    slo = SloPolicy(latency_s=args.slo_ms / 1e3, error_budget=args.error_budget)
    print(f"loadgen: {args.mode} loop, wire={args.wire}, "
          f"{args.connections} connection(s), SLO p99<{args.slo_ms:g}ms "
          f"budget {args.error_budget:g}")
    reports = []
    rows = []
    for point, sessions in enumerate(ramp):
        config = LoadgenConfig(
            mode=args.mode, sessions=sessions, steps=args.steps,
            duration_s=args.duration, rate=args.rate, arrival=args.arrival,
            tail_alpha=args.tail_alpha, connections=args.connections,
            wire=args.wire, batch=args.batch,
            busy_retries=args.busy_retries, slo=slo, seed=args.seed,
            session_prefix=f"lg{point}",
        )
        report = LoadGenerator(args.host, args.port, config).run()
        d = report.to_dict()
        reports.append(d)
        rows.append([
            str(sessions), f"{d['rps']:.0f}",
            f"{d.get('p50_ms', float('nan')):.2f}",
            f"{d.get('p99_ms', float('nan')):.2f}",
            str(d["busy"] + d["error"]), str(d["busy_retried"]),
            "ok" if d["slo_ok"] else "VIOLATED",
        ])
    print(_fmt.format_table(
        ["sessions", "rps", "p50 ms", "p99 ms", "shed", "retried", "slo"],
        rows,
    ))
    for d in reports:
        for violation in d["violations"]:
            print(f"  {d['sessions']} sessions: {violation}")
    if args.json is not None:
        args.json.write_text(json.dumps(reports, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0 if all(d["slo_ok"] for d in reports) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.path is not None:
        from repro.obs import read_trace, summarize_trace

        if not args.path.exists():
            print(f"error: no such trace file: {args.path}", file=sys.stderr)
            return 2
        print(summarize_trace(read_trace(args.path)))
        return 0
    from repro.experiments.fig03_trace import simulate_gs2_trace

    trace = simulate_gs2_trace(
        n_nodes=args.nodes, n_iterations=args.iterations, seed=args.seed
    )
    for key, value in trace.summary().items():
        print(f"{key:24s}: {value}")
    print()
    for p in range(min(args.show, trace.n_processors)):
        print(f"p{p:02d} |{sparkline(trace.processor_series(p))}|")
    data = trace.flatten()
    print()
    print(histogram(data, bins=16, title="pooled iteration times", log_counts=True))
    print()
    rep = tail_report(data)
    print("\n".join(rep.lines()))
    med = float(np.median(data))
    rep_t = tail_report(truncate(data, 5 * med))
    print(f"\ntruncated at 5 x median ({5*med:.2f}):")
    print("\n".join(rep_t.lines()))
    return 0


def _cmd_surface(args: argparse.Namespace) -> int:
    from repro.experiments.fig08_surface import run_surface_slice

    name, _, value = args.fixed.partition("=")
    if not value:
        print(f"error: --fixed must look like name=value, got {args.fixed!r}",
              file=sys.stderr)
        return 2
    s = run_surface_slice(
        x_name=args.x_name, y_name=args.y_name, fixed={name: float(value)}
    )
    print(_fmt.format_table(["property", "value"], s.rows()))
    print()
    print(
        heatmap(
            s.costs,
            row_labels=[f"{v:g}" for v in s.x_values],
            col_labels=[f"{v:g}" for v in s.y_values],
            title=f"cost({s.x_name} x {s.y_name}) @ {s.fixed_name}={s.fixed_value:g}",
        )
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    sweep_kwargs = _sweep_kwargs(args)
    executor = sweep_kwargs["executor"]
    if executor != "serial" and args.figure in ("fig01", "fig08"):
        print(f"note: {args.figure} does not sweep trials; "
              "--jobs/--executor ignored", file=sys.stderr)
    if args.figure == "fig01":
        from repro.experiments.fig01_metrics import run_metric_comparison

        mc = run_metric_comparison()
        print(_fmt.format_table(
            ["algorithm", "tail mean T_k", "Total_Time", "final cost"], mc.rows()
        ))
        print(f"\nwinner by tail : {mc.winner_by_tail()}")
        print(f"winner by total: {mc.winner_by_total()}")
        print(
            line_plot(
                {
                    name: (None, cum)
                    for name, cum in zip(mc.names, mc.cumulative_series)
                },
                title="cumulative Total_Time (Fig. 1b)",
                height=12,
            )
        )
        return 0
    if args.figure == "fig08":
        return _cmd_surface(argparse.Namespace(
            x_name="ntheta", y_name="negrid", fixed="nodes=32"
        ))
    if args.figure == "fig09":
        from repro.experiments.fig09_simplex import run_initial_simplex_study

        study = run_initial_simplex_study(
            trials=args.trials or 12, **sweep_kwargs
        )
        print(_fmt.format_table(
            ["shape", "r", "mean NTT", "std NTT"], study.rows()
        ))
        print(f"\naxial beats minimal: {study.axial_beats_minimal()}")
        return 0
    if args.figure == "fig10":
        from repro.experiments.fig10_sampling import run_sampling_study

        study = run_sampling_study(
            trials=args.trials or 40, **sweep_kwargs
        )
        print(_fmt.format_table(
            ["rho", "K", "mean NTT", "std NTT"], study.rows()
        ))
        print(
            line_plot(
                {
                    f"rho={rho:g}": (list(study.k_values), study.mean_ntt[i])
                    for i, rho in enumerate(study.rho_values)
                },
                title="Average NTT vs K (Fig. 10)",
                height=14,
            )
        )
        return 0
    raise AssertionError(args.figure)  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    """Entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    handlers = {
        "tune": _cmd_tune,
        "serve": _cmd_serve,
        "fleet": _cmd_fleet,
        "loadgen": _cmd_loadgen,
        "trace": _cmd_trace,
        "surface": _cmd_surface,
        "figures": _cmd_figures,
    }
    handler = handlers[args.command]
    if getattr(args, "profile", False):
        # Profile the whole command so hot-path hunts see the real mix
        # (argument handling is negligible next to the sweep itself).
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        code = profiler.runcall(handler, args)
        print()
        pstats.Stats(profiler, stream=sys.stdout).sort_stats(
            "cumulative"
        ).print_stats(25)
        return code
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
