"""JSON-friendly (de)serialization of parameter declarations.

Used by the client/server tuning protocol: an application registers its
tunables by sending plain-dict *specs* over the wire, and the server
reconstructs the :class:`~repro.space.ParameterSpace` from them.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.space.parameter import (
    FloatParameter,
    IntParameter,
    OrdinalParameter,
    Parameter,
)
from repro.space.space import ParameterSpace

__all__ = [
    "parameter_to_spec",
    "parameter_from_spec",
    "space_to_spec",
    "space_from_spec",
]


def parameter_to_spec(param: Parameter) -> dict[str, Any]:
    """Serialize one parameter into a JSON-compatible dict."""
    if isinstance(param, IntParameter):
        return {
            "type": "int",
            "name": param.name,
            "lower": int(param.lower),
            "upper": int(param.upper),
            "step": param.step,
        }
    if isinstance(param, OrdinalParameter):
        return {
            "type": "ordinal",
            "name": param.name,
            "values": [float(v) for v in param.values()],
        }
    if isinstance(param, FloatParameter):
        return {
            "type": "float",
            "name": param.name,
            "lower": param.lower,
            "upper": param.upper,
            "probe_step": param.probe_step,
            "tolerance": param.tolerance,
        }
    raise TypeError(f"unsupported parameter type: {type(param).__name__}")


def parameter_from_spec(spec: Mapping[str, Any]) -> Parameter:
    """Reconstruct a parameter from its spec dict."""
    kind = spec.get("type")
    if kind == "int":
        return IntParameter(
            spec["name"], int(spec["lower"]), int(spec["upper"]),
            step=int(spec.get("step", 1)),
        )
    if kind == "ordinal":
        return OrdinalParameter(spec["name"], list(spec["values"]))
    if kind == "float":
        return FloatParameter(
            spec["name"], float(spec["lower"]), float(spec["upper"]),
            probe_step=spec.get("probe_step"),
            tolerance=spec.get("tolerance"),
        )
    raise ValueError(f"unknown parameter spec type: {kind!r}")


def space_to_spec(space: ParameterSpace) -> list[dict[str, Any]]:
    """Serialize a whole space (ordered list of parameter specs)."""
    return [parameter_to_spec(p) for p in space]


def space_from_spec(specs: Sequence[Mapping[str, Any]]) -> ParameterSpace:
    """Reconstruct a space from an ordered list of parameter specs."""
    return ParameterSpace([parameter_from_spec(s) for s in specs])
