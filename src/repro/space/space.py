"""The admissible region: an ordered collection of tunable parameters.

A *point* is a 1-D ``numpy.ndarray`` of length ``N`` holding one value per
parameter, in declaration order.  All tuner-facing geometry (projection,
probing, random sampling) lives here so the search algorithms never touch
per-parameter details.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro._util import as_generator
from repro.space.parameter import Parameter

__all__ = ["ParameterSpace", "SliceEmbedding"]


class ParameterSpace:
    """An ordered, named set of :class:`~repro.space.Parameter` objects."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        params = list(parameters)
        if not params:
            raise ValueError("a parameter space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")
        self._params: tuple[Parameter, ...] = tuple(params)
        self._index = {p.name: i for i, p in enumerate(params)}

    # -- basic structure ----------------------------------------------------

    @property
    def dimension(self) -> int:
        """Number of tunable parameters N."""
        return len(self._params)

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        return self._params

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __getitem__(self, key: int | str) -> Parameter:
        if isinstance(key, str):
            return self._params[self._index[key]]
        return self._params[key]

    @property
    def is_discrete(self) -> bool:
        """True when every parameter has a finite admissible set."""
        return all(p.is_discrete for p in self._params)

    def n_points(self) -> int:
        """Number of admissible points (discrete spaces only)."""
        if not self.is_discrete:
            raise ValueError("n_points() is only defined for fully discrete spaces")
        n = 1
        for p in self._params:
            n *= p.n_values  # type: ignore[attr-defined]
        return n

    # -- point plumbing -------------------------------------------------------

    def as_point(self, values: Mapping[str, float] | Sequence[float]) -> np.ndarray:
        """Convert a dict or sequence into a point array (no projection)."""
        if isinstance(values, Mapping):
            missing = set(self.names) - set(values)
            extra = set(values) - set(self.names)
            if missing or extra:
                raise ValueError(
                    f"point keys mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
                )
            arr = np.array([float(values[n]) for n in self.names], dtype=float)
        else:
            arr = np.asarray(values, dtype=float)
            if arr.shape != (self.dimension,):
                raise ValueError(
                    f"expected a point of dimension {self.dimension}, got shape {arr.shape}"
                )
        return arr

    def as_dict(self, point: Sequence[float]) -> dict[str, float]:
        """Convert a point array into a ``{name: value}`` dict."""
        pt = self.as_point(point)
        return {name: float(v) for name, v in zip(self.names, pt)}

    def as_batch(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Convert a sequence of points into an ``(m, N)`` array (no projection)."""
        arr = np.asarray(points, dtype=float)
        if arr.size == 0:
            return arr.reshape(0, self.dimension)
        if arr.ndim != 2 or arr.shape[1] != self.dimension:
            raise ValueError(
                f"expected an (m, {self.dimension}) batch of points, "
                f"got shape {arr.shape}"
            )
        return arr

    # -- admissibility & projection ------------------------------------------

    def contains(self, point: Sequence[float]) -> bool:
        """True when every coordinate of *point* is admissible."""
        pt = self.as_point(point)
        return all(p.contains(x) for p, x in zip(self._params, pt))

    def nearest(self, point: Sequence[float]) -> np.ndarray:
        """Coordinate-wise nearest admissible point."""
        pt = self.as_point(point)
        return np.array([p.nearest(x) for p, x in zip(self._params, pt)], dtype=float)

    def project(self, point: Sequence[float], center: Sequence[float]) -> np.ndarray:
        """The paper's projection operator Π(·) (§3.2.1).

        Coordinate-wise: clip to bounds, then round discrete coordinates
        toward the transformation centre *center* (which must be admissible).
        """
        pt = self.as_point(point)
        ctr = self.as_point(center)
        return np.array(
            [p.project(x, c) for p, x, c in zip(self._params, pt, ctr)], dtype=float
        )

    #: below this many rows the fixed cost of the column-wise numpy kernels
    #: exceeds the scalar loop; both sides are bitwise identical, so the
    #: batch entry points just pick whichever is faster
    _VECTORIZE_MIN_ROWS = 12

    def contains_batch(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Vectorized :meth:`contains`: one boolean per row of *points*."""
        arr = self.as_batch(points)
        if arr.shape[0] < self._VECTORIZE_MIN_ROWS:
            params = self._params
            return np.fromiter(
                (
                    all(p.contains(float(x)) for p, x in zip(params, row))
                    for row in arr
                ),
                dtype=bool,
                count=arr.shape[0],
            )
        ok = np.ones(arr.shape[0], dtype=bool)
        for i, p in enumerate(self._params):
            ok &= p.contains_array(arr[:, i])
        return ok

    def project_batch(
        self, points: Sequence[Sequence[float]], center: Sequence[float]
    ) -> np.ndarray:
        """Vectorized :meth:`project` of many points toward one *center*.

        Column-wise over the parameters, so results are bitwise identical to
        projecting each row individually (the executor-invariance contract).
        """
        arr = self.as_batch(points)
        ctr = self.as_point(center)
        out = np.empty_like(arr)
        if arr.shape[0] < self._VECTORIZE_MIN_ROWS:
            centers = [float(c) for c in ctr]
            params = self._params
            for p, c in zip(params, centers):
                p._require_admissible(c, "projection centre")
            for r, row in enumerate(arr):
                for i, p in enumerate(params):
                    out[r, i] = p.project_unchecked(float(row[i]), centers[i])
            return out
        for i, p in enumerate(self._params):
            out[:, i] = p.project_array(arr[:, i], float(ctr[i]))
        return out

    def center(self) -> np.ndarray:
        """The admissible centre point c of the region (§3.2.3)."""
        return np.array([p.center() for p in self._params], dtype=float)

    def spans(self) -> np.ndarray:
        """Per-parameter range widths ``u(i) - l(i)``."""
        return np.array([p.span for p in self._params], dtype=float)

    def lower_bounds(self) -> np.ndarray:
        """Per-parameter declared lower limits l(i)."""
        return np.array([p.lower for p in self._params], dtype=float)

    def upper_bounds(self) -> np.ndarray:
        """Per-parameter declared upper limits u(i)."""
        return np.array([p.upper for p in self._params], dtype=float)

    # -- sampling & enumeration ------------------------------------------------

    def random_point(self, rng: int | np.random.Generator | None = None) -> np.ndarray:
        """A uniformly random admissible point."""
        gen = as_generator(rng)
        return np.array([p.random(gen) for p in self._params], dtype=float)

    def grid(self) -> Iterator[np.ndarray]:
        """Iterate over every admissible point of a fully discrete space."""
        if not self.is_discrete:
            raise ValueError("grid() is only defined for fully discrete spaces")
        axes = [p.values() for p in self._params]  # type: ignore[attr-defined]
        for combo in itertools.product(*axes):
            yield np.asarray(combo, dtype=float)

    # -- stopping-criterion support ---------------------------------------------

    def probe_points(self, v0: Sequence[float]) -> list[np.ndarray]:
        """The up-to-2N certificate points around *v0* (§3.2.2).

        For each coordinate i, step to the neighbouring admissible value above
        and below ``v0[i]`` (skipping directions blocked by a boundary, where
        the paper sets ``l_i``/``u_i`` to zero).
        """
        base = self.as_point(v0)
        if not self.contains(base):
            raise ValueError(f"probe centre {base!r} is not admissible")
        probes: list[np.ndarray] = []
        for i, p in enumerate(self._params):
            for neighbor in (p.upper_neighbor(base[i]), p.lower_neighbor(base[i])):
                if neighbor is None:
                    continue
                pt = base.copy()
                pt[i] = neighbor
                probes.append(pt)
        return probes

    def coincident(self, points: Iterable[Sequence[float]]) -> bool:
        """True when all *points* have collapsed onto one configuration.

        Discrete coordinates must be exactly equal; continuous coordinates
        must agree within the parameter's ``tolerance`` (§3.2.2).
        """
        pts = [self.as_point(p) for p in points]
        if len(pts) <= 1:
            return True
        ref = pts[0]
        for pt in pts[1:]:
            for i, p in enumerate(self._params):
                if p.is_discrete:
                    if pt[i] != ref[i]:
                        return False
                else:
                    tol = getattr(p, "tolerance", 0.0)
                    if abs(pt[i] - ref[i]) > tol:
                        return False
        return True

    # -- slicing ---------------------------------------------------------------

    def slice(
        self, fixed: Mapping[str, float]
    ) -> tuple["ParameterSpace", "SliceEmbedding"]:
        """Pin some parameters; returns (sub-space, embedding).

        The embedding maps a sub-space point back to a full-space point with
        the pinned values filled in — the tool behind 2-D surface slices
        (Fig. 8) and partial re-tuning (freeze the parameters you trust,
        search the rest).
        """
        fixed = dict(fixed)
        unknown = set(fixed) - set(self.names)
        if unknown:
            raise ValueError(f"unknown parameters to fix: {sorted(unknown)}")
        for name, value in fixed.items():
            if not self[name].contains(value):
                raise ValueError(f"{name}={value} is not admissible")
        free = [p for p in self._params if p.name not in fixed]
        if not free:
            raise ValueError("cannot fix every parameter; nothing left to tune")
        return ParameterSpace(free), SliceEmbedding(self, fixed)

    # -- normalization (plotting / distance) -------------------------------------

    def normalize(self, point: Sequence[float]) -> np.ndarray:
        """Map a point into [0, 1]^N by its declared bounds."""
        pt = self.as_point(point)
        spans = self.spans()
        spans = np.where(spans > 0, spans, 1.0)
        return (pt - self.lower_bounds()) / spans

    def normalize_batch(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Vectorized :meth:`normalize` over an ``(m, N)`` batch of points."""
        arr = self.as_batch(points)
        spans = self.spans()
        spans = np.where(spans > 0, spans, 1.0)
        return (arr - self.lower_bounds()) / spans

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(p) for p in self._params)
        return f"ParameterSpace([{inner}])"


class SliceEmbedding:
    """Maps points of a sliced sub-space back into the full space.

    Callable: ``embed(sub_point) -> full_point``.  Also wraps full-space
    objectives for use on the sub-space: ``embed.lift(fn)(sub_point) ==
    fn(embed(sub_point))``.
    """

    def __init__(self, full_space: ParameterSpace, fixed: dict[str, float]) -> None:
        self.full_space = full_space
        self.fixed = dict(fixed)
        self._free_names = [n for n in full_space.names if n not in fixed]

    def __call__(self, sub_point: Sequence[float]) -> np.ndarray:
        sub = np.asarray(sub_point, dtype=float).ravel()
        if sub.shape != (len(self._free_names),):
            raise ValueError(
                f"expected a point of dimension {len(self._free_names)}, "
                f"got shape {sub.shape}"
            )
        values = dict(self.fixed)
        values.update(zip(self._free_names, (float(v) for v in sub)))
        return self.full_space.as_point(values)

    def lift(self, fn):
        """A full-space objective as a sub-space objective."""

        def lifted(sub_point):
            return fn(self(sub_point))

        return lifted
