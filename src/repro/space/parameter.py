"""Single tunable-parameter declarations.

The paper (§3.2.1) distinguishes two constraint kinds:

* **boundary constraints** — upper/lower limits, handled by clipping;
* **internal discontinuity constraints** — parameters restricted to a discrete
  admissible set, handled by rounding *toward the transformation centre*
  ``v_k^0``: a computed value strictly between two consecutive admissible
  values ``l < x < u`` projects to ``l`` when the centre lies below ``x`` and
  to ``u`` when the centre lies above.  This choice guarantees that a finite
  number of consecutive shrink steps collapses every discrete coordinate onto
  the centre, which the stopping criterion (§3.2.2) relies on.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro._util import as_generator

__all__ = ["Parameter", "IntParameter", "FloatParameter", "OrdinalParameter"]


class Parameter(ABC):
    """A named tunable parameter with an admissible set of numeric values."""

    def __init__(self, name: str, lower: float, upper: float) -> None:
        if not name:
            raise ValueError("parameter name must be non-empty")
        if not (np.isfinite(lower) and np.isfinite(upper)):
            raise ValueError(f"{name}: bounds must be finite, got [{lower}, {upper}]")
        if lower > upper:
            raise ValueError(f"{name}: lower bound {lower} exceeds upper bound {upper}")
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)

    # -- admissibility -----------------------------------------------------

    @property
    @abstractmethod
    def is_discrete(self) -> bool:
        """True when the admissible set is a finite set of values."""

    @abstractmethod
    def contains(self, x: float) -> bool:
        """True when *x* is an admissible value of this parameter."""

    @abstractmethod
    def nearest(self, x: float) -> float:
        """The admissible value closest to *x* (ties resolve downward)."""

    @abstractmethod
    def project(self, x: float, center: float) -> float:
        """Project *x* onto the admissible set, rounding toward *center*.

        *center* must itself be admissible (it is a simplex vertex); violations
        raise ``ValueError`` so geometry bugs surface early.
        """

    # -- structure ---------------------------------------------------------

    @abstractmethod
    def lower_neighbor(self, x: float) -> float | None:
        """Largest admissible value strictly below admissible *x*, or None."""

    @abstractmethod
    def upper_neighbor(self, x: float) -> float | None:
        """Smallest admissible value strictly above admissible *x*, or None."""

    @abstractmethod
    def random(self, rng: int | np.random.Generator | None = None) -> float:
        """A uniformly random admissible value."""

    @property
    def span(self) -> float:
        """Width ``u(i) - l(i)`` of the declared range (Eq. for b_i, §3.2.3)."""
        return self.upper - self.lower

    def center(self) -> float:
        """Admissible value nearest to the midpoint of the declared range."""
        return self.nearest(0.5 * (self.lower + self.upper))

    def clip(self, x: float) -> float:
        """Clip *x* to the declared bounds (boundary constraints only)."""
        return float(min(max(x, self.lower), self.upper))

    def _require_admissible(self, x: float, role: str) -> None:
        if not self.contains(x):
            raise ValueError(
                f"{self.name}: {role} value {x!r} is not admissible"
            )

    # -- vectorized counterparts --------------------------------------------
    #
    # The batch methods must agree bitwise with their scalar versions: the
    # sweep engine's executor-invariance contract compares results to the
    # last ulp, so subclasses may only vectorize with elementwise-identical
    # operations.  The fallbacks below just loop.

    def contains_array(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`contains` over a 1-D array of values."""
        arr = np.asarray(xs, dtype=float)
        return np.fromiter(
            (self.contains(float(x)) for x in arr), dtype=bool, count=arr.size
        )

    def project_array(self, xs: Sequence[float], center: float) -> np.ndarray:
        """Vectorized :meth:`project` of many values toward one *center*."""
        arr = np.asarray(xs, dtype=float)
        return np.array([self.project(float(x), center) for x in arr], dtype=float)

    def project_unchecked(self, x: float, center: float) -> float:
        """:meth:`project` for a centre already known to be admissible.

        Batch projections validate each centre coordinate once per column
        and then call this per row, instead of re-validating the same
        centre for every row.  Values are identical to :meth:`project`.
        """
        return self.project(x, center)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, [{self.lower}, {self.upper}])"


class FloatParameter(Parameter):
    """A continuous parameter on ``[lower, upper]``.

    ``probe_step`` is the "sufficiently small" perturbation the stopping
    criterion (§3.2.2) uses for continuous coordinates; ``tolerance`` is the
    vertex-coincidence threshold used to decide the simplex has collapsed.
    """

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        *,
        probe_step: float | None = None,
        tolerance: float | None = None,
    ) -> None:
        super().__init__(name, lower, upper)
        if self.span <= 0:
            raise ValueError(f"{name}: continuous parameter needs a non-empty range")
        self.probe_step = float(probe_step) if probe_step is not None else 0.01 * self.span
        self.tolerance = float(tolerance) if tolerance is not None else 1e-6 * self.span
        if self.probe_step <= 0:
            raise ValueError(f"{name}: probe_step must be positive")
        if self.tolerance <= 0:
            raise ValueError(f"{name}: tolerance must be positive")

    @property
    def is_discrete(self) -> bool:
        return False

    def contains(self, x: float) -> bool:
        return bool(np.isfinite(x)) and self.lower <= x <= self.upper

    def nearest(self, x: float) -> float:
        return self.clip(x)

    def project(self, x: float, center: float) -> float:
        self._require_admissible(center, "projection centre")
        return self.clip(x)

    def project_unchecked(self, x: float, center: float) -> float:
        return self.clip(x)

    def lower_neighbor(self, x: float) -> float | None:
        self._require_admissible(x, "query")
        candidate = x - self.probe_step
        if candidate < self.lower:
            # At (or within a probe step of) the boundary: §3.2.2 sets l_i = 0.
            return None if x <= self.lower else self.lower
        return candidate

    def upper_neighbor(self, x: float) -> float | None:
        self._require_admissible(x, "query")
        candidate = x + self.probe_step
        if candidate > self.upper:
            return None if x >= self.upper else self.upper
        return candidate

    def random(self, rng: int | np.random.Generator | None = None) -> float:
        gen = as_generator(rng)
        return float(gen.uniform(self.lower, self.upper))

    def contains_array(self, xs: Sequence[float]) -> np.ndarray:
        arr = np.asarray(xs, dtype=float)
        return np.isfinite(arr) & (self.lower <= arr) & (arr <= self.upper)

    def project_array(self, xs: Sequence[float], center: float) -> np.ndarray:
        self._require_admissible(center, "projection centre")
        arr = np.asarray(xs, dtype=float)
        # np.minimum/np.maximum propagate NaN exactly like the scalar
        # ``min(max(x, lower), upper)`` chain in :meth:`Parameter.clip`.
        return np.minimum(np.maximum(arr, self.lower), self.upper)


class IntParameter(Parameter):
    """An integer-valued parameter: ``lower, lower+step, ..., <= upper``."""

    def __init__(self, name: str, lower: int, upper: int, *, step: int = 1) -> None:
        if step <= 0:
            raise ValueError(f"{name}: step must be a positive integer, got {step}")
        if int(lower) != lower or int(upper) != upper or int(step) != step:
            raise ValueError(f"{name}: integer parameter needs integer bounds/step")
        super().__init__(name, float(lower), float(upper))
        self.step = int(step)
        self._count = int(math.floor((self.upper - self.lower) / self.step)) + 1
        if self._count < 1:
            raise ValueError(f"{name}: empty admissible set")
        # Highest admissible value (declared upper may not be on the lattice).
        self.upper_admissible = self.lower + (self._count - 1) * self.step

    @property
    def is_discrete(self) -> bool:
        return True

    @property
    def n_values(self) -> int:
        """Number of admissible values."""
        return self._count

    def values(self) -> np.ndarray:
        """All admissible values in increasing order."""
        return self.lower + self.step * np.arange(self._count, dtype=float)

    def _index_of(self, x: float) -> int | None:
        """Lattice index of admissible *x*, or None when off-lattice."""
        k = (x - self.lower) / self.step
        ki = round(k)
        if 0 <= ki < self._count and math.isclose(k, ki, abs_tol=1e-9):
            return int(ki)
        return None

    def contains(self, x: float) -> bool:
        return bool(np.isfinite(x)) and self._index_of(float(x)) is not None

    def nearest(self, x: float) -> float:
        k = (self.clip(x) - self.lower) / self.step
        ki = min(max(int(math.floor(k + 0.5)), 0), self._count - 1)
        return self.lower + ki * self.step

    def project(self, x: float, center: float) -> float:
        self._require_admissible(center, "projection centre")
        return self.project_unchecked(x, center)

    def project_unchecked(self, x: float, center: float) -> float:
        if not np.isfinite(x):
            raise ValueError(f"{self.name}: cannot project non-finite value {x!r}")
        if x <= self.lower:
            return self.lower
        if x >= self.upper_admissible:
            return self.upper_admissible
        if self.contains(x):
            return float(self.nearest(x))  # snap exact-lattice floats
        lo = self.lower + math.floor((x - self.lower) / self.step) * self.step
        hi = lo + self.step
        # Round toward the transformation centre (§3.2.1).
        if center < x:
            return lo
        if center > x:
            return hi
        # centre == x is impossible for admissible centre and inadmissible x,
        # but floating arithmetic can get here; fall back to nearest.
        return self.nearest(x)

    def lower_neighbor(self, x: float) -> float | None:
        self._require_admissible(x, "query")
        idx = self._index_of(float(x))
        assert idx is not None
        return None if idx == 0 else self.lower + (idx - 1) * self.step

    def upper_neighbor(self, x: float) -> float | None:
        self._require_admissible(x, "query")
        idx = self._index_of(float(x))
        assert idx is not None
        if idx == self._count - 1:
            return None
        return self.lower + (idx + 1) * self.step

    def random(self, rng: int | np.random.Generator | None = None) -> float:
        gen = as_generator(rng)
        return float(self.lower + self.step * gen.integers(0, self._count))

    def _lattice_mask(self, arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(on-lattice mask, rounded lattice index) mirroring `_index_of`."""
        k = (arr - self.lower) / self.step
        ki = np.round(k)  # banker's rounding, same as the scalar round()
        # math.isclose(k, ki, abs_tol=1e-9) with its default rel_tol=1e-9:
        close = np.abs(k - ki) <= np.maximum(
            1e-9 * np.maximum(np.abs(k), np.abs(ki)), 1e-9
        )
        return (ki >= 0) & (ki < self._count) & close, ki

    def contains_array(self, xs: Sequence[float]) -> np.ndarray:
        arr = np.asarray(xs, dtype=float)
        finite = np.isfinite(arr)
        on, _ = self._lattice_mask(np.where(finite, arr, self.lower))
        return finite & on

    def project_array(self, xs: Sequence[float], center: float) -> np.ndarray:
        self._require_admissible(center, "projection centre")
        arr = np.asarray(xs, dtype=float)
        if not np.all(np.isfinite(arr)):
            bad = float(arr[~np.isfinite(arr)][0])
            raise ValueError(f"{self.name}: cannot project non-finite value {bad!r}")
        out = np.empty(arr.shape, dtype=float)
        below = arr <= self.lower
        above = arr >= self.upper_admissible
        out[below] = self.lower
        out[above] = self.upper_admissible
        mid = ~(below | above)
        if np.any(mid):
            xm = arr[mid]
            k = (xm - self.lower) / self.step
            on, _ = self._lattice_mask(xm)
            # nearest() for in-range x: clip is a no-op, so floor(k + 0.5)
            kn = np.clip(np.floor(k + 0.5), 0, self._count - 1)
            near = self.lower + kn * self.step
            lo = self.lower + np.floor(k) * self.step
            hi = lo + self.step
            c = float(center)
            toward = np.where(c < xm, lo, np.where(c > xm, hi, near))
            out[mid] = np.where(on, near, toward)
        return out


class OrdinalParameter(Parameter):
    """A parameter restricted to an explicit, ordered set of numeric values.

    Typical use: node counts restricted to powers of two, or block sizes the
    library ships kernels for.  Projection rounds toward the transformation
    centre exactly as for :class:`IntParameter`, but against the explicit set.
    """

    #: adjacent admissible values must differ by more than this tolerance —
    #: membership tests use it, so closer values would be indistinguishable
    MATCH_TOLERANCE = 1e-9

    def __init__(self, name: str, values: Sequence[float]) -> None:
        vals = np.asarray(sorted(float(v) for v in values), dtype=float)
        if vals.size < 1:
            raise ValueError(f"{name}: ordinal parameter needs at least one value")
        if not np.all(np.isfinite(vals)):
            raise ValueError(f"{name}: all values must be finite")
        if vals.size > 1 and np.min(np.diff(vals)) <= self.MATCH_TOLERANCE:
            raise ValueError(
                f"{name}: admissible values closer than {self.MATCH_TOLERANCE} "
                "are indistinguishable (duplicates after tolerance)"
            )
        super().__init__(name, float(vals[0]), float(vals[-1]))
        self._values = vals

    @property
    def is_discrete(self) -> bool:
        return True

    @property
    def n_values(self) -> int:
        return int(self._values.size)

    def values(self) -> np.ndarray:
        return self._values.copy()

    def _index_of(self, x: float) -> int | None:
        idx = int(np.searchsorted(self._values, x))
        for k in (idx - 1, idx):
            if 0 <= k < self._values.size and math.isclose(
                self._values[k], x, rel_tol=0.0, abs_tol=self.MATCH_TOLERANCE
            ):
                return k
        return None

    def contains(self, x: float) -> bool:
        return bool(np.isfinite(x)) and self._index_of(float(x)) is not None

    def nearest(self, x: float) -> float:
        x = self.clip(x)
        idx = int(np.searchsorted(self._values, x))
        if idx == 0:
            return float(self._values[0])
        if idx >= self._values.size:
            return float(self._values[-1])
        lo, hi = self._values[idx - 1], self._values[idx]
        return float(lo if (x - lo) <= (hi - x) else hi)

    def project(self, x: float, center: float) -> float:
        self._require_admissible(center, "projection centre")
        return self.project_unchecked(x, center)

    def project_unchecked(self, x: float, center: float) -> float:
        if not np.isfinite(x):
            raise ValueError(f"{self.name}: cannot project non-finite value {x!r}")
        if x <= self._values[0]:
            return float(self._values[0])
        if x >= self._values[-1]:
            return float(self._values[-1])
        exact = self._index_of(float(x))
        if exact is not None:
            return float(self._values[exact])
        idx = int(np.searchsorted(self._values, x))
        lo, hi = float(self._values[idx - 1]), float(self._values[idx])
        if center < x:
            return lo
        if center > x:
            return hi
        return self.nearest(x)

    def lower_neighbor(self, x: float) -> float | None:
        self._require_admissible(x, "query")
        idx = self._index_of(float(x))
        assert idx is not None
        return None if idx == 0 else float(self._values[idx - 1])

    def upper_neighbor(self, x: float) -> float | None:
        self._require_admissible(x, "query")
        idx = self._index_of(float(x))
        assert idx is not None
        if idx == self._values.size - 1:
            return None
        return float(self._values[idx + 1])

    def random(self, rng: int | np.random.Generator | None = None) -> float:
        gen = as_generator(rng)
        return float(gen.choice(self._values))

    def contains_array(self, xs: Sequence[float]) -> np.ndarray:
        arr = np.asarray(xs, dtype=float)
        finite = np.isfinite(arr)
        safe = np.where(finite, arr, self._values[0])
        idx = np.searchsorted(self._values, safe)
        out = np.zeros(arr.shape, dtype=bool)
        for off in (-1, 0):  # the two candidates `_index_of` inspects
            k = idx + off
            valid = (k >= 0) & (k < self._values.size)
            kk = np.clip(k, 0, self._values.size - 1)
            out |= valid & (np.abs(self._values[kk] - safe) <= self.MATCH_TOLERANCE)
        return finite & out

    def project_array(self, xs: Sequence[float], center: float) -> np.ndarray:
        self._require_admissible(center, "projection centre")
        arr = np.asarray(xs, dtype=float)
        if not np.all(np.isfinite(arr)):
            bad = float(arr[~np.isfinite(arr)][0])
            raise ValueError(f"{self.name}: cannot project non-finite value {bad!r}")
        vals = self._values
        out = np.empty(arr.shape, dtype=float)
        below = arr <= vals[0]
        above = arr >= vals[-1]
        out[below] = vals[0]
        out[above] = vals[-1]
        mid = ~(below | above)
        if np.any(mid):
            xm = arr[mid]
            idx = np.searchsorted(vals, xm)  # strictly interior: 1 <= idx < size
            lo = vals[idx - 1]
            hi = vals[idx]
            near = np.where((xm - lo) <= (hi - xm), lo, hi)
            on = (np.abs(lo - xm) <= self.MATCH_TOLERANCE) | (
                np.abs(hi - xm) <= self.MATCH_TOLERANCE
            )
            c = float(center)
            toward = np.where(c < xm, lo, np.where(c > xm, hi, near))
            out[mid] = np.where(on, near, toward)
        return out
