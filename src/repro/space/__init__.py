"""Tunable-parameter declarations and admissible regions.

This mirrors the contract an application has with Active Harmony: the user
declares each tunable parameter's type, range, and (for discrete parameters)
step or explicit value set; the tuning system never proposes a point outside
the admissible region.
"""

from repro.space.parameter import (
    FloatParameter,
    IntParameter,
    OrdinalParameter,
    Parameter,
)
from repro.space.space import ParameterSpace, SliceEmbedding

__all__ = [
    "Parameter",
    "IntParameter",
    "FloatParameter",
    "OrdinalParameter",
    "ParameterSpace",
    "SliceEmbedding",
]
