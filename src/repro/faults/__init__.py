"""Deterministic fault injection for sweep execution.

Real parallel machines misbehave: daemons interfere, nodes straggle,
workers crash, observations go heavy-tailed.  This package makes those
failure regimes *first-class and reproducible* so the fault-tolerance
layer in :mod:`repro.experiments.parallel` can be exercised — in tests
and in experiments — with bit-identical replays:

* :class:`FaultPlan` — a seedable per-task fault schedule.  Every
  decision is a pure function of ``(plan seed, cell, trial, attempt)``
  driven by a spawned :class:`numpy.random.SeedSequence`, so injection
  composes with paired seeding, is independent of execution order, and
  replays identically across serial/thread/process executors;
* :class:`FaultyEvaluator` — evaluator-layer injection: wraps any
  substrate and misbehaves on schedule (NaN / negative / mis-shaped
  observations, inconsistent barriers, raised exceptions, slowdowns);
* :class:`FaultyFactory` — session-factory-layer injection: wraps a
  sweep cell factory and crashes/hangs/degrades sessions per plan;
* :class:`InjectedFault` — the exception raised by injected crashes,
  so tests can tell injected failures from real bugs;
* :class:`DroppingTransport` / :func:`dropping_factory` — serving-layer
  injection: client connections that die on a deterministic schedule
  (``FaultPlan.conn_drop_at``), exercising the tuning client's
  reconnect-and-replay path; ``FaultPlan.server_crash_at`` schedules
  whole-server kills for the WAL crash-recovery battery.

The executor-worker layer consumes :class:`FaultPlan` directly: a
:class:`~repro.experiments.parallel.SweepTask` carries an optional
``faults`` plan which :func:`~repro.experiments.parallel.run_trial`
applies before and around the session.
"""

from repro.faults.plan import FAULT_KINDS, FaultPlan, InjectedFault
from repro.faults.inject import (
    DroppingTransport,
    FaultyEvaluator,
    FaultyFactory,
    dropping_factory,
)

__all__ = [
    "FAULT_KINDS",
    "DroppingTransport",
    "FaultPlan",
    "FaultyEvaluator",
    "FaultyFactory",
    "InjectedFault",
    "dropping_factory",
]
