"""Injection wrappers: broken substrates and broken session factories.

:class:`FaultyEvaluator` generalizes the ad-hoc ``BrokenEvaluator`` stubs
the test suite used to carry: it wraps a real substrate (or a bare cost
function) and misbehaves on a configurable window of waves.  Because it is
a plain picklable object it also works inside process-pool workers, which
is how :func:`repro.experiments.parallel.run_trial` degrades a session
whose task drew a ``nan`` or ``slowdown`` fault.

:class:`FaultyFactory` injects one layer up: it wraps a sweep cell factory
so sessions crash/hang/degrade per a :class:`~repro.faults.FaultPlan`
before the executor ever sees them — useful for exercising the sweep
runner through its public ``cells`` interface alone.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.faults.plan import FaultPlan, InjectedFault
from repro.harmony.evaluator import DelegatingEvaluator, Evaluator
from repro.obs.trace import emit as _obs_emit

__all__ = [
    "DroppingTransport",
    "FaultyEvaluator",
    "FaultyFactory",
    "dropping_factory",
]


class FaultyEvaluator(DelegatingEvaluator):
    """Wraps a substrate and misbehaves on schedule.

    Parameters
    ----------
    inner:
        The real substrate — an :class:`Evaluator` or a bare cost callable
        (wrapped in a noise-free :class:`FunctionEvaluator`).
    mode:
        What goes wrong on an active wave: ``"nan"``, ``"negative"``,
        ``"wrong_shape"``, ``"bad_barrier"`` (invalid observations the
        session must reject), ``"raises"`` (the substrate goes away), or
        ``"slowdown"`` (observations scaled by *factor* — a straggler that
        still answers).
    after, times:
        The active window: waves ``[after, after + times)`` misbehave
        (``times=None`` = every wave from *after* on).  Defaults inject
        from the very first wave, matching the historical BrokenEvaluator.
    """

    MODES = ("nan", "negative", "wrong_shape", "bad_barrier", "raises", "slowdown")

    #: Faults are injected by intercepting ``observe_wave``, so the
    #: session's batched ``observe_precomputed`` fast path must stay off —
    #: it would route observations around the interception and the
    #: scheduled fault would silently never fire.  Explicit here (rather
    #: than inherited) because it is a correctness requirement, not a
    #: missing optimization.
    supports_precomputed = False

    def __init__(
        self,
        inner: Evaluator | Callable[[np.ndarray], float],
        *,
        mode: str,
        after: int = 0,
        times: int | None = None,
        factor: float = 4.0,
        message: str = "substrate went away",
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown fault mode {mode!r}; known: {self.MODES}")
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 (or None), got {times}")
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        super().__init__(inner)
        self.mode = mode
        self.after = int(after)
        self.times = times if times is None else int(times)
        self.factor = float(factor)
        self.message = message
        self._wave_index = 0

    def observe_wave(
        self, points: Sequence[np.ndarray], rng: np.random.Generator
    ) -> tuple[np.ndarray, float]:
        wave = self._wave_index
        self._wave_index += 1
        active = wave >= self.after and (
            self.times is None or wave < self.after + self.times
        )
        if not active:
            return self.inner.observe_wave(points, rng)
        _obs_emit("fault.fire", mode=self.mode, wave=wave)
        n = len(points)
        if self.mode == "raises":
            raise OSError(self.message)
        if self.mode == "nan":
            return np.full(n, np.nan), 1.0
        if self.mode == "negative":
            return np.full(n, -1.0), 1.0
        if self.mode == "wrong_shape":
            return np.ones(n + 3), 1.0
        if self.mode == "bad_barrier":
            # observations fine, barrier below the wave max: inconsistent
            return np.full(n, 5.0), 1.0
        # slowdown: the substrate answers, just late — scale both the
        # observations and the barrier so the record stays self-consistent
        y, t_step = self.inner.observe_wave(points, rng)
        return np.asarray(y, dtype=float) * self.factor, float(t_step) * self.factor


class FaultyFactory:
    """Wraps a sweep cell factory with plan-driven injection.

    The wrapper consults :meth:`FaultPlan.fault_for_seed` with the trial
    seed (the only task identity a factory sees): ``crash`` raises
    :class:`InjectedFault` at build time, ``hang`` sleeps
    ``plan.hang_seconds`` before building, ``nan``/``slowdown`` wrap the
    built session's evaluator in a :class:`FaultyEvaluator`.  Propagates
    the wrapped factory's ``trial_aware`` calling convention and pickles
    whenever the factory and plan do.
    """

    def __init__(
        self, factory: Callable, plan: FaultPlan, *, attempt: int = 0
    ) -> None:
        self.factory = factory
        self.plan = plan
        self.attempt = int(attempt)
        self.trial_aware = bool(getattr(factory, "trial_aware", False))

    def __call__(self, seed: int, trial_index: int | None = None):
        fault = self.plan.fault_for_seed(seed, self.attempt)
        if fault == "crash":
            raise InjectedFault(
                f"injected crash: factory seed {seed} attempt {self.attempt}"
            )
        if fault == "hang":
            time.sleep(self.plan.hang_seconds)
        if self.trial_aware:
            session = self.factory(seed, trial_index)
        else:
            session = self.factory(seed)
        if fault in ("nan", "slowdown") and hasattr(session, "evaluator"):
            session.evaluator = FaultyEvaluator(
                session.evaluator,
                mode="nan" if fault == "nan" else "slowdown",
                factor=self.plan.slowdown_factor,
            )
        return session

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyFactory({self.factory!r}, plan={self.plan!r})"


class DroppingTransport:
    """Client-transport injection: connections that die on schedule.

    Wraps a real :class:`~repro.harmony.transport.Transport` and consults
    :meth:`FaultPlan.conn_drop_at` per request: a scheduled drop *delivers
    the request* to the inner transport, discards the response, closes the
    connection, and raises :class:`ConnectionError` — the lost-ACK case,
    the harshest one for exactly-once semantics (a drop before delivery is
    strictly easier).  Pair with ``TuningClient(transport_factory=
    dropping_factory(...))``: each reconnection mints a fresh epoch with
    its own deterministic drop schedule, so the client's reconnect-and-
    replay path is exercised without a real server ever being killed.

    Binary negotiation is deliberately not forwarded (``supports_binary``
    stays False): drops then interleave with plain JSON requests, which
    keeps the injected schedule aligned with request indices.
    """

    def __init__(self, inner, plan: FaultPlan, epoch: int = 0) -> None:
        self.inner = inner
        self.plan = plan
        self.epoch = int(epoch)
        self._n = 0

    def _scheduled(self) -> bool:
        index = self._n
        self._n += 1
        return self.plan.conn_drop_at(self.epoch, index)

    def _drop(self, deliver: Callable[[], object]) -> None:
        try:
            deliver()
        except Exception:  # the connection may genuinely be gone already
            pass
        self.close()
        raise ConnectionError(
            f"injected connection drop (epoch {self.epoch}, "
            f"request {self._n - 1})"
        )

    def request(self, message):
        if self._scheduled():
            self._drop(lambda: self.inner.request(message))
        return self.inner.request(message)

    def request_many(self, messages):
        if self._scheduled():
            self._drop(lambda: self.inner.request_many(messages))
        return self.inner.request_many(messages)

    def close(self) -> None:
        self.inner.close()


def dropping_factory(make: Callable, plan: FaultPlan) -> Callable:
    """A ``transport_factory`` whose connections drop per *plan*.

    Each call (i.e. each client reconnection) wraps a fresh transport from
    *make* in a :class:`DroppingTransport` with the next epoch index.
    """
    from itertools import count as _count

    epochs = _count()

    def factory():
        return DroppingTransport(make(), plan, next(epochs))

    return factory
