"""Seedable per-task fault schedules.

A :class:`FaultPlan` answers one question: *what goes wrong for attempt
``a`` of task ``(cell, trial)``?*  The answer is drawn from a generator
seeded by ``SeedSequence([plan_seed, cell, trial, attempt])``, which makes
the schedule

* **deterministic** — the same plan seed always yields the same faults;
* **order-independent** — the decision for one task never consumes
  entropy another task observes, so serial and pool executors (and any
  completion order) see identical schedules;
* **retry-aware** — the attempt index is part of the key, and attempts
  at or beyond ``max_faulty_attempts`` are always clean, so a bounded
  retry loop is guaranteed to converge on an injected (as opposed to
  real) fault.

Injection never touches the session's own RNG stream: a crashed/hung/NaN
attempt dies before delivering a result, and the clean retry rebuilds the
session from its original seed — so the surviving outcome is bit-identical
to a run that was never faulted at all.  (The one exception is
``slowdown``, which deliberately *succeeds* with scaled observations to
model stragglers; it too is deterministic per task and attempt.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FAULT_KINDS", "FaultPlan", "InjectedFault"]

#: everything a plan can schedule, in band order
FAULT_KINDS = ("crash", "hang", "nan", "slowdown")


class InjectedFault(RuntimeError):
    """Raised by deliberately injected crashes (never by real bugs)."""


@dataclass(frozen=True)
class FaultPlan:
    """Per-task crash/hang/NaN/slowdown schedule, seeded and replayable.

    Each rate is the marginal probability that a *faulty-eligible* attempt
    of a task draws that fault; rates partition one uniform draw, so they
    must sum to at most 1.  ``max_faulty_attempts`` bounds how many leading
    attempts of a task may misbehave — attempt indices at or beyond it are
    always clean, which is what lets ``failure_policy="retry"`` terminate.
    """

    seed: int
    crash: float = 0.0
    hang: float = 0.0
    nan: float = 0.0
    slowdown: float = 0.0
    #: serving-layer rates (independent draws, not part of the trial-fault
    #: band partition): probability that a given request index kills the
    #: server process / drops the client's connection.  Consumed by the
    #: durability tests and :class:`~repro.faults.DroppingTransport`.
    server_crash: float = 0.0
    conn_drop: float = 0.0
    #: attempts >= this index never fault (1 = only first attempts fault)
    max_faulty_attempts: int = 1
    #: how long an injected hang sleeps (a straggler, not an infinite wedge)
    hang_seconds: float = 30.0
    #: multiplier applied to observed times by ``slowdown`` faults
    slowdown_factor: float = 4.0

    def __post_init__(self) -> None:
        for name in FAULT_KINDS:
            rate = getattr(self, name)
            if not np.isfinite(rate) or not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} rate must lie in [0, 1], got {rate!r}")
        total = self.crash + self.hang + self.nan + self.slowdown
        if total > 1.0 + 1e-12:
            raise ValueError(f"fault rates must sum to <= 1, got {total}")
        for name in ("server_crash", "conn_drop"):
            rate = getattr(self, name)
            if not np.isfinite(rate) or not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} rate must lie in [0, 1], got {rate!r}")
        if self.max_faulty_attempts < 0:
            raise ValueError(
                f"max_faulty_attempts must be >= 0, got {self.max_faulty_attempts}"
            )
        if not np.isfinite(self.hang_seconds) or self.hang_seconds <= 0:
            raise ValueError(f"hang_seconds must be > 0, got {self.hang_seconds}")
        if not np.isfinite(self.slowdown_factor) or self.slowdown_factor <= 0:
            raise ValueError(
                f"slowdown_factor must be > 0, got {self.slowdown_factor}"
            )

    # -- the schedule ----------------------------------------------------------

    def _draw(self, *key: int) -> str | None:
        """One uniform draw keyed by *key*, partitioned into fault bands."""
        ss = np.random.SeedSequence([int(self.seed), *(int(k) for k in key)])
        u = float(np.random.default_rng(ss).random())
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if u < rate:
                return kind
            u -= rate
        return None

    def fault_for(
        self, cell_index: int, trial_index: int, attempt: int = 0
    ) -> str | None:
        """The fault (or None) for attempt *attempt* of task (cell, trial)."""
        if attempt >= self.max_faulty_attempts:
            return None
        return self._draw(0, cell_index, trial_index, attempt)

    def fault_for_seed(self, seed: int, attempt: int = 0) -> str | None:
        """Seed-keyed variant for :class:`~repro.faults.FaultyFactory`,
        which sees only the trial seed (not the cell/trial grid position)."""
        if attempt >= self.max_faulty_attempts:
            return None
        return self._draw(1, seed, attempt)

    def expected_fault_rate(self) -> float:
        """Marginal probability a first attempt draws *any* fault."""
        return self.crash + self.hang + self.nan + self.slowdown

    # -- serving-layer faults ----------------------------------------------------

    def server_crash_at(self, event_index: int) -> bool:
        """Whether the *event_index*-th durability event kills the server.

        Keyed only by the event index, so the schedule is identical no
        matter which client's request produced the event — the paired
        baseline run (``server_crash=0``) sees the same request stream.
        """
        if self.server_crash <= 0.0:
            return False
        ss = np.random.SeedSequence([int(self.seed), 2, int(event_index)])
        return float(np.random.default_rng(ss).random()) < self.server_crash

    def conn_drop_at(self, conn_index: int, request_index: int) -> bool:
        """Whether request *request_index* on connection *conn_index* drops.

        Drives :class:`~repro.faults.DroppingTransport`: the draw is keyed
        by (connection, request), so every reconnection epoch replays a
        fresh — but deterministic — drop schedule.
        """
        if self.conn_drop <= 0.0:
            return False
        ss = np.random.SeedSequence(
            [int(self.seed), 3, int(conn_index), int(request_index)]
        )
        return float(np.random.default_rng(ss).random()) < self.conn_drop
