"""Figure 3 — simulated GS2 iteration-time traces on a 64-node cluster.

The paper runs GS2 at a fixed configuration for 800 time steps on 64
processors and observes (Fig. 3): a quiet baseline, *frequent small spikes*,
*rare big spikes*, and *high cross-processor correlation* between the
per-processor curves.  Figures 4–7 then analyse the pooled samples.

We regenerate the trace from the two-priority-queue cluster simulator with
three disruption sources, each mapped to a real cluster phenomenon:

* **private bursts** (per node, independent) — Poisson arrivals with
  heavy-tailed Pareto service: OS/daemon activity, the small spikes;
* **shared bursts** (identical on every node) — rare Poisson arrivals with a
  larger heavy-tailed service: cluster-wide events (e.g. parallel-FS
  scans), the big spikes *and* the cross-processor correlation;
* **shared periodic daemon** — a fixed-cadence house-keeping task (the
  Petrini-style OS noise).

The base per-iteration cost is the GS2 surrogate at the fixed
configuration, so everything is in the same "seconds per iteration" units
as the tuning experiments.
"""

from __future__ import annotations

import numpy as np

from repro.apps.gs2 import GS2Surrogate
from repro.cluster.cluster import Cluster
from repro.cluster.trace import ClusterTrace
from repro.cluster.workload import (
    FixedService,
    ParetoService,
    PeriodicDaemon,
    PoissonArrivals,
)

__all__ = ["simulate_gs2_trace"]


def simulate_gs2_trace(
    *,
    n_nodes: int = 64,
    n_iterations: int = 800,
    config: tuple[float, float, float] = (64, 32, 64),
    private_rate: float = 0.15,
    private_service: tuple[float, float] = (1.3, 0.15),
    shared_rate: float = 0.007,
    shared_service: tuple[float, float] = (1.25, 2.5),
    daemon_period: float = 30.0,
    daemon_cost: float = 0.12,
    seed: int | np.random.Generator | None = 11,
) -> ClusterTrace:
    """Run the fixed-configuration trace experiment; returns the trace.

    Service tuples are ``(alpha, beta)`` of the Pareto service-demand law.
    Defaults reproduce the Fig. 3 morphology: baseline ≈ 0.9 s, small
    spikes every ~10 iterations, a handful of order-10× big spikes over the
    800 iterations, and strong cross-node correlation from the shared
    sources.
    """
    surrogate = GS2Surrogate()
    base_cost = surrogate(np.asarray(config, dtype=float))
    cluster = Cluster(
        n_nodes,
        private_sources=[
            PoissonArrivals(private_rate, ParetoService(*private_service)),
        ],
        shared_sources=[
            PoissonArrivals(shared_rate, ParetoService(*shared_service)),
            PeriodicDaemon(daemon_period, FixedService(daemon_cost)),
        ],
        seed=seed,
    )
    trace = cluster.run(base_cost, n_iterations)
    trace.meta.update(
        {
            "experiment": "fig03",
            "config": tuple(float(c) for c in config),
            "base_cost": float(base_cost),
        }
    )
    return trace
