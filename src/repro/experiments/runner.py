"""A general paired-trials sweep runner for tuning experiments.

Every study in the paper has the same skeleton: a grid of configurations
(tuner variant × noise level × sampling plan), each run for T independent
trials, with per-cell means/stds of Normalized Total Time and final cost.
This module factors that skeleton out so new studies are a dozen lines:

* **paired seeds** — every cell replays the same per-trial seed sequence,
  so cell differences are configuration effects, not sampling luck;
* **cells are factories** — a cell is a callable returning a fresh
  :class:`~repro.harmony.session.TuningSession` for (trial_seed), so any
  combination of tuner/noise/plan/evaluator fits;
* **results are arrays + labels**, exportable to JSON and renderable with
  :func:`repro.experiments._fmt.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro._util import as_generator
from repro.experiments.parallel import (
    Executor,
    SweepTask,
    execute_ordered,
    make_executor,
)
from repro.harmony.metrics import SessionResult
from repro.harmony.session import TuningSession

__all__ = ["CellStats", "SweepResult", "run_sweep"]

#: builds one fresh session for a given trial seed; factories that set a
#: truthy ``trial_aware`` attribute are instead called ``(seed, trial_index)``
#: (for paired designs that key per-trial state, e.g. one database per trial)
SessionFactory = Callable[[int], TuningSession]


@dataclass(frozen=True)
class CellStats:
    """Aggregates of one grid cell across trials."""

    name: str
    ntt_mean: float
    ntt_std: float
    final_cost_mean: float
    final_cost_std: float
    total_time_mean: float
    converged_fraction: float
    trials: int

    def row(self) -> list[object]:
        return [
            self.name,
            self.ntt_mean,
            self.ntt_std,
            self.final_cost_mean,
            self.converged_fraction,
        ]


@dataclass(frozen=True)
class SweepResult:
    """All cells of one sweep."""

    cells: tuple[CellStats, ...]
    trial_seeds: tuple[int, ...]
    meta: dict = field(default_factory=dict)

    def __getitem__(self, name: str) -> CellStats:
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise KeyError(f"no cell named {name!r}; have {[c.name for c in self.cells]}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.cells)

    def best_by_ntt(self) -> CellStats:
        return min(self.cells, key=lambda c: c.ntt_mean)

    def rows(self) -> list[list[object]]:
        return [c.row() for c in self.cells]

    def to_dict(self) -> dict:
        return {
            "cells": [vars(c) for c in self.cells],
            "trial_seeds": list(self.trial_seeds),
            "meta": {k: _json_safe(v) for k, v in self.meta.items()},
        }


def _json_safe(value):
    """Coerce a meta value to a JSON-native type, losslessly where possible.

    Ints/floats/bools/strings/None pass through (NumPy scalars unwrapped),
    lists/tuples/dicts recurse; anything else falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def run_sweep(
    cells: Mapping[str, SessionFactory] | Sequence[tuple[str, SessionFactory]],
    *,
    trials: int,
    rng: int | np.random.Generator | None = None,
    collect: Callable[[SessionResult], None] | None = None,
    executor: str | Executor = "serial",
    jobs: int | None = None,
) -> SweepResult:
    """Run every cell for *trials* paired-seed sessions and aggregate.

    Parameters
    ----------
    cells:
        Mapping (or ordered pairs) of cell name → session factory.  The
        factory receives the trial's seed and must build a *fresh* tuner and
        session (sessions are single-use).
    trials:
        Trials per cell; the same seed sequence is replayed for every cell.
    collect:
        Optional hook called with every :class:`SessionResult` (e.g. to
        archive them with ``result.to_json()``).  Hooks always observe
        results in deterministic (cell-major, trial-minor) order, whatever
        the executor.
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"``, or a
        pre-configured :class:`~repro.experiments.parallel.Executor`.  The
        master RNG draws the trial-seed vector once up front either way, so
        every executor produces a bit-identical :class:`SweepResult` for
        the same ``rng``.  Process execution requires picklable factories.
    jobs:
        Worker count for pool executors (default: all CPUs).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    items = list(cells.items()) if isinstance(cells, Mapping) else list(cells)
    if not items:
        raise ValueError("need at least one cell")
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate cell names: {names}")
    exec_ = make_executor(executor, jobs)
    master = as_generator(rng)
    trial_seeds = [int(s) for s in master.integers(0, 2**63 - 1, size=trials)]
    keep_results = collect is not None
    tasks = [
        SweepTask(
            cell_index=c,
            cell_name=name,
            trial_index=t,
            seed=seed,
            factory=factory,
            keep_result=keep_results,
        )
        for c, (name, factory) in enumerate(items)
        for t, seed in enumerate(trial_seeds)
    ]
    emit = (lambda outcome: collect(outcome.result)) if keep_results else None
    outcomes = execute_ordered(exec_, tasks, emit)
    stats: list[CellStats] = []
    for c, (name, _) in enumerate(items):
        cell_outcomes = outcomes[c * trials : (c + 1) * trials]
        ntts = np.array([o.ntt for o in cell_outcomes], dtype=float)
        finals = np.array([o.final_cost for o in cell_outcomes], dtype=float)
        totals = np.array([o.total_time for o in cell_outcomes], dtype=float)
        converged = sum(o.converged for o in cell_outcomes)
        stats.append(
            CellStats(
                name=name,
                ntt_mean=float(ntts.mean()),
                ntt_std=float(ntts.std()),
                final_cost_mean=float(np.nanmean(finals)),
                final_cost_std=float(np.nanstd(finals)),
                total_time_mean=float(totals.mean()),
                converged_fraction=converged / trials,
                trials=trials,
            )
        )
    return SweepResult(
        cells=tuple(stats),
        trial_seeds=tuple(trial_seeds),
        meta={"trials": trials},
    )
