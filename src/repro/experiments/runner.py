"""A general paired-trials sweep runner for tuning experiments.

Every study in the paper has the same skeleton: a grid of configurations
(tuner variant × noise level × sampling plan), each run for T independent
trials, with per-cell means/stds of Normalized Total Time and final cost.
This module factors that skeleton out so new studies are a dozen lines:

* **paired seeds** — every cell replays the same per-trial seed sequence,
  so cell differences are configuration effects, not sampling luck;
* **cells are factories** — a cell is a callable returning a fresh
  :class:`~repro.harmony.session.TuningSession` for (trial_seed), so any
  combination of tuner/noise/plan/evaluator fits;
* **results are arrays + labels**, exportable to JSON and renderable with
  :func:`repro.experiments._fmt.format_table`;
* **failures are data** — under ``failure_policy="skip"``/``"retry"`` a
  crashed, hung, or timed-out trial becomes a ledger entry instead of an
  aborted sweep: aggregates are computed over the surviving trials and
  the per-trial failure records ride along on the result.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro._util import as_generator
from repro.experiments.parallel import (
    FAILURE_POLICIES,
    Executor,
    SweepTask,
    TrialFailure,
    TrialOutcome,
    execute_ordered,
    make_executor,
)
from repro.faults.plan import FaultPlan
from repro.harmony.metrics import SessionResult
from repro.harmony.session import TuningSession
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry

__all__ = ["CellStats", "SweepResult", "run_sweep"]

#: builds one fresh session for a given trial seed; factories that set a
#: truthy ``trial_aware`` attribute are instead called ``(seed, trial_index)``
#: (for paired designs that key per-trial state, e.g. one database per trial)
SessionFactory = Callable[[int], TuningSession]


@dataclass(frozen=True)
class CellStats:
    """Aggregates of one grid cell across its *surviving* trials.

    ``trials`` counts the trials that produced a result; ``failures``
    counts the trials lost to errors/timeouts after recovery.  A cell
    whose every trial failed reports NaN aggregates.
    """

    name: str
    ntt_mean: float
    ntt_std: float
    final_cost_mean: float
    final_cost_std: float
    total_time_mean: float
    converged_fraction: float
    trials: int
    failures: int = 0

    def row(self) -> list[object]:
        return [
            self.name,
            self.ntt_mean,
            self.ntt_std,
            self.final_cost_mean,
            self.converged_fraction,
        ]


@dataclass(frozen=True)
class SweepResult:
    """All cells of one sweep, plus the per-trial failure ledger."""

    cells: tuple[CellStats, ...]
    trial_seeds: tuple[int, ...]
    meta: dict = field(default_factory=dict)
    #: trials that produced no result after recovery (empty for a clean run)
    failures: tuple[TrialFailure, ...] = ()

    def __getitem__(self, name: str) -> CellStats:
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise KeyError(f"no cell named {name!r}; have {[c.name for c in self.cells]}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.cells)

    def best_by_ntt(self) -> CellStats:
        return min(self.cells, key=lambda c: c.ntt_mean)

    def rows(self) -> list[list[object]]:
        return [c.row() for c in self.cells]

    def to_dict(self) -> dict:
        return {
            "cells": [vars(c) for c in self.cells],
            "trial_seeds": list(self.trial_seeds),
            "meta": {k: _json_safe(v) for k, v in self.meta.items()},
            "failures": [f.to_dict() for f in self.failures],
        }


def _json_safe(value):
    """Coerce a meta value to a JSON-native type, losslessly where possible.

    Ints/floats/bools/strings/None pass through (NumPy scalars unwrapped),
    lists/tuples/dicts recurse; anything else falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def _sweep_metrics(events: list[dict], meta: dict) -> MetricsRegistry:
    """Reduce a merged trace to the ``meta["obs"]`` aggregate metrics."""
    registry = MetricsRegistry()
    for event in events:
        kind = event["kind"]
        if kind == "trial.start" and event.get("wait_s") is not None:
            registry.observe("queue_wait_s", event["wait_s"])
        elif kind == "trial.end" and event.get("dur_s") is not None:
            registry.observe("trial_latency_s", event["dur_s"])
        elif kind == "trial.settled":
            if event.get("status") == "ok":
                registry.inc("trials_ok")
                registry.observe("trial_total_time", event["total_time"])
            else:
                registry.inc("trials_failed")
                registry.inc("failures_" + event.get("fail_kind", "unknown"))
        elif kind == "retry.dispatch":
            registry.inc("retries_dispatched")
        elif kind == "worker.lost":
            registry.inc("workers_lost")
        elif kind == "fault.injected":
            registry.inc("faults_injected")
        elif kind == "shm.export":
            registry.inc("shm_broadcast_bytes", event.get("total_bytes", 0))
            registry.inc("shm_segments", event.get("n_segments", 0))
    db = meta.get("db_cache")
    if db is not None:
        queries = db.get("n_exact", 0) + db.get("n_interpolated", 0)
        if queries:
            registry.gauge(
                "db_cache_hit_rate", db.get("n_memo_hits", 0) / queries
            )
    return registry


def run_sweep(
    cells: Mapping[str, SessionFactory] | Sequence[tuple[str, SessionFactory]],
    *,
    trials: int,
    rng: int | np.random.Generator | None = None,
    collect: Callable[[SessionResult], None] | None = None,
    executor: str | Executor = "serial",
    jobs: int | None = None,
    failure_policy: str = "raise",
    retries: int | None = None,
    task_timeout: float | None = None,
    faults: FaultPlan | None = None,
    cache_stats: object | None = None,
    trace: str | Path | None = None,
) -> SweepResult:
    """Run every cell for *trials* paired-seed sessions and aggregate.

    Parameters
    ----------
    cells:
        Mapping (or ordered pairs) of cell name → session factory.  The
        factory receives the trial's seed and must build a *fresh* tuner and
        session (sessions are single-use).
    trials:
        Trials per cell; the same seed sequence is replayed for every cell.
    collect:
        Optional hook called with every successful :class:`SessionResult`
        (e.g. to archive them with ``result.to_json()``).  Hooks always
        observe results in deterministic (cell-major, trial-minor) order,
        whatever the executor; failed trials are skipped.
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"``, or a
        pre-configured :class:`~repro.experiments.parallel.Executor`.  The
        master RNG draws the trial-seed vector once up front either way, so
        every executor produces a bit-identical :class:`SweepResult` for
        the same ``rng``.  Process execution requires picklable factories.
    jobs:
        Worker count for pool executors (default: all CPUs).
    failure_policy:
        ``"raise"`` (default) aborts on the first failed trial — the
        historical behavior; ``"skip"`` drops failed trials from the
        aggregates and records them in ``SweepResult.failures``;
        ``"retry"`` re-dispatches failed trials (same seed, incremented
        attempt) before skipping survivors-of-retry.
    retries:
        Extra recovery rounds for failed tasks (default: 2 under
        ``"retry"``, 0 otherwise).
    task_timeout:
        Per-trial wall-clock allowance in seconds; an over-budget trial is
        abandoned and handled per *failure_policy* (under ``"retry"`` it
        is re-dispatched — the straggler pass).
    faults:
        Optional :class:`~repro.faults.FaultPlan` injected at the worker:
        deterministic per-(cell, trial, attempt) crashes/hangs/NaNs/
        slowdowns for testing and resilience experiments.
    cache_stats:
        Optional object exposing ``cache_stats() -> dict[str, int]`` (e.g.
        the :class:`~repro.apps.database.PerformanceDatabase` the cells
        share): the sweep snapshots it before and after and reports the
        counter deltas under ``SweepResult.meta["db_cache"]``.  Off by
        default because the numbers are executor-dependent diagnostics,
        not results: process workers mutate *copies* of the database, so
        their hits never reach the parent's counters — use the serial or
        thread executor when cache observability matters.
    trace:
        Optional path for a JSONL trace of the whole sweep.  Every worker
        records typed events (trial lifecycle, session steps, tuner
        phases, injected faults) into per-worker shard files; the runner
        merges them with its own dispatch/verdict events into one
        canonically ordered file and snapshots aggregate metrics into
        ``SweepResult.meta["obs"]``.  ``None`` (the default) keeps every
        instrumentation site a single ``is None`` check.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if failure_policy not in FAILURE_POLICIES:
        raise ValueError(
            f"unknown failure_policy {failure_policy!r}; known: {FAILURE_POLICIES}"
        )
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(f"task_timeout must be > 0 seconds, got {task_timeout}")
    if retries is None:
        retries = 2 if failure_policy == "retry" else 0
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    items = list(cells.items()) if isinstance(cells, Mapping) else list(cells)
    if not items:
        raise ValueError("need at least one cell")
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate cell names: {names}")
    exec_ = make_executor(executor, jobs)
    master = as_generator(rng)
    trial_seeds = [int(s) for s in master.integers(0, 2**63 - 1, size=trials)]
    keep_results = collect is not None
    tracer: obs_trace.Tracer | None = None
    shard_spec: dict | None = None
    shard_dir: str | None = None
    t_start = 0.0
    if trace is not None:
        tracer = obs_trace.Tracer(label="sweep")
        shard_dir = tempfile.mkdtemp(prefix="repro-obs-")
        shard_spec = {"dir": shard_dir}
        obs_trace._adopt_worker_tracer(shard_spec, tracer)
        exec_.tracer = tracer
        t_start = time.time()
    dispatch_ts = time.time() if tracer is not None else None
    tasks = [
        SweepTask(
            cell_index=c,
            cell_name=name,
            trial_index=t,
            seed=seed,
            factory=factory,
            keep_result=keep_results,
            timeout=task_timeout,
            faults=faults,
            trace=shard_spec,
            dispatch_ts=dispatch_ts,
        )
        for c, (name, factory) in enumerate(items)
        for t, seed in enumerate(trial_seeds)
    ]
    if tracer is not None:
        tracer.emit(
            "sweep.start",
            n_cells=len(items),
            trials=trials,
            cell_names=[name for name, _ in items],
            executor=exec_.name,
            failure_policy=failure_policy,
            retries=retries,
            task_timeout=task_timeout,
            trial_seeds=list(trial_seeds),
        )
    if cache_stats is not None and not callable(
        getattr(cache_stats, "cache_stats", None)
    ):
        raise TypeError(
            "cache_stats must expose a cache_stats() method, got "
            f"{type(cache_stats).__name__}"
        )
    stats_before = dict(cache_stats.cache_stats()) if cache_stats is not None else None
    emit = (lambda outcome: collect(outcome.result)) if keep_results else None
    try:
        results = execute_ordered(
            exec_, tasks, emit, failure_policy=failure_policy, retries=retries
        )
    except BaseException:
        if tracer is not None:
            exec_.tracer = None
            obs_trace._forget_worker_tracer(shard_spec)
            shutil.rmtree(shard_dir, ignore_errors=True)
        raise
    all_failures: list[TrialFailure] = []
    stats: list[CellStats] = []
    for c, (name, _) in enumerate(items):
        cell_results = results[c * trials : (c + 1) * trials]
        survived = [r for r in cell_results if isinstance(r, TrialOutcome)]
        failed = [r for r in cell_results if isinstance(r, TrialFailure)]
        all_failures.extend(failed)
        if survived:
            ntts = np.array([o.ntt for o in survived], dtype=float)
            finals = np.array([o.final_cost for o in survived], dtype=float)
            totals = np.array([o.total_time for o in survived], dtype=float)
            converged = sum(o.converged for o in survived)
            stats.append(
                CellStats(
                    name=name,
                    ntt_mean=float(ntts.mean()),
                    ntt_std=float(ntts.std()),
                    final_cost_mean=float(np.nanmean(finals)),
                    final_cost_std=float(np.nanstd(finals)),
                    total_time_mean=float(totals.mean()),
                    converged_fraction=converged / len(survived),
                    trials=len(survived),
                    failures=len(failed),
                )
            )
        else:
            stats.append(
                CellStats(
                    name=name,
                    ntt_mean=float("nan"),
                    ntt_std=float("nan"),
                    final_cost_mean=float("nan"),
                    final_cost_std=float("nan"),
                    total_time_mean=float("nan"),
                    converged_fraction=0.0,
                    trials=0,
                    failures=len(failed),
                )
            )
    meta: dict = {"trials": trials, "failure_policy": failure_policy}
    if retries:
        meta["retries"] = retries
    if task_timeout is not None:
        meta["task_timeout"] = task_timeout
    if all_failures:
        meta["n_failed"] = len(all_failures)
    if stats_before is not None:
        after = dict(cache_stats.cache_stats())
        # Monotone counters report the sweep's delta; gauges (memo_len)
        # report the final value.
        meta["db_cache"] = {
            key: value - stats_before.get(key, 0) if key.startswith("n_") else value
            for key, value in after.items()
        }
    if tracer is not None:
        best = min(stats, key=lambda c: c.ntt_mean)
        tracer.emit(
            "sweep.end",
            n_failed=len(all_failures),
            best=best.name,
            dur_s=time.time() - t_start,
        )
        exec_.tracer = None
        events = obs_trace.canonical_events(
            tracer.drain() + obs_trace.read_shards(shard_dir), strip=False
        )
        obs_trace._forget_worker_tracer(shard_spec)
        shutil.rmtree(shard_dir, ignore_errors=True)
        obs_trace.write_jsonl(events, trace)
        meta["obs"] = {
            "trace_path": str(trace),
            "n_events": len(events),
            "metrics": _sweep_metrics(events, meta).snapshot(),
        }
    return SweepResult(
        cells=tuple(stats),
        trial_seeds=tuple(trial_seeds),
        meta=meta,
        failures=tuple(all_failures),
    )
