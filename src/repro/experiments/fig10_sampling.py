"""Figure 10 — Average NTT vs. number of samples K, per idle throughput ρ.

The paper's headline experiment (§6.2): run the modified PRO (min-operator
multi-sampling, samples taken in *subsequent* time steps — the worst case)
on the GS2 database with i.i.d. Pareto(α = 1.7) noise whose scale follows
Eq. (17).  For each configuration (ρ, K), average Normalized Total Time
over many independent simulations.  The paper's observations, which the
bench asserts as shape claims:

1. the ρ = 0 curve increases ~linearly with K (redundant samples waste
   time steps);
2. for ρ > 0 there is an *interior* optimal K, increasing with ρ;
3. performance degrades as ρ grows — with the famous exception that a
   little noise (ρ = 0.05) can *beat* the noise-free run by shaking the
   search out of poor local minima (the simulated-annealing-like effect).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_generator
from repro.apps.database import PerformanceDatabase
from repro.core.pro import ParallelRankOrdering
from repro.core.sampling import Estimator, MinEstimator, SamplingPlan
from repro.experiments.common import gs2_problem
from repro.experiments.runner import run_sweep
from repro.faults.plan import FaultPlan
from repro.harmony.session import TuningSession
from repro.space import ParameterSpace
from repro.variability.models import NoNoise, ParetoNoise

__all__ = ["SamplingStudy", "run_sampling_study"]

#: the paper's grids: K in 1..5, ρ from 0 to 0.4 in steps of 0.05
DEFAULT_K_VALUES = (1, 2, 3, 4, 5)
DEFAULT_RHO_VALUES = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40)


@dataclass(frozen=True)
class SamplingStudy:
    """Mean NTT per (ρ, K) cell, plus the derived shape observations."""

    rho_values: tuple[float, ...]
    k_values: tuple[int, ...]
    #: mean NTT, shape (len(rho_values), len(k_values))
    mean_ntt: np.ndarray
    std_ntt: np.ndarray
    trials: int
    meta: dict = field(default_factory=dict)

    def optimal_k(self, rho: float) -> int:
        """argmin_K of the mean NTT row for the given ρ."""
        i = self.rho_values.index(rho)
        return int(self.k_values[int(np.argmin(self.mean_ntt[i]))])

    def rho0_slope_positive(self) -> bool:
        """ρ = 0: NTT strictly increases from K=1 to K=max (claim 1)."""
        if 0.0 not in self.rho_values:
            raise ValueError("study does not include rho = 0")
        row = self.mean_ntt[self.rho_values.index(0.0)]
        return bool(row[-1] > row[0])

    def near_optimal_k(self, rho: float, se_slack: float = 1.0) -> list[int]:
        """Ks whose mean NTT is within *se_slack* standard errors of the row
        minimum — the statistically-tied-with-best set."""
        i = self.rho_values.index(rho)
        row = self.mean_ntt[i]
        se = self.std_ntt[i] / np.sqrt(max(self.trials, 1))
        j_min = int(np.argmin(row))
        threshold = row[j_min] + se_slack * se[j_min]
        return [int(k) for k, m in zip(self.k_values, row) if m <= threshold]

    def optimal_k_nondecreasing(
        self, tolerance: int = 1, se_slack: float = 1.0
    ) -> bool:
        """K*(ρ) grows (weakly) with ρ (claim 2), judged robustly.

        Because cell means carry sampling error, we ask whether a
        non-decreasing chain exists through the per-row *near-optimal sets*
        (within ``se_slack`` standard errors of each row's minimum), allowing
        ``tolerance`` of backward slack.
        """
        prev = 0
        for rho in self.rho_values:
            candidates = [
                k for k in self.near_optimal_k(rho, se_slack) if k >= prev - tolerance
            ]
            if not candidates:
                return False
            prev = max(prev, min(candidates))
        return True

    def interior_optimum_exists(self, min_rho: float = 0.15) -> bool:
        """Some noisy row prefers K strictly greater than 1 (claim 2)."""
        return any(
            self.optimal_k(r) > 1 for r in self.rho_values if r >= min_rho
        )

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for i, rho in enumerate(self.rho_values):
            for j, k in enumerate(self.k_values):
                out.append(
                    [rho, k, float(self.mean_ntt[i, j]), float(self.std_ntt[i, j])]
                )
        return out


@dataclass(frozen=True)
class _SamplingCell:
    """Picklable session factory for one (ρ, K) cell of the Fig. 10 grid."""

    db: PerformanceDatabase
    space: ParameterSpace
    rho: float
    k: int
    alpha: float
    budget: int
    estimator: Estimator

    def __call__(self, seed: int) -> TuningSession:
        noise = (
            NoNoise()
            if self.rho == 0.0
            else ParetoNoise(rho=self.rho, alpha=self.alpha)
        )
        tuner = ParallelRankOrdering(self.space, r=0.2)
        return TuningSession(
            tuner,
            self.db,
            noise=noise,
            budget=self.budget,
            plan=SamplingPlan(self.k, self.estimator),
            rng=seed,
        )


def run_sampling_study(
    *,
    rho_values: tuple[float, ...] = DEFAULT_RHO_VALUES,
    k_values: tuple[int, ...] = DEFAULT_K_VALUES,
    trials: int = 200,
    budget: int = 400,
    alpha: float = 1.7,
    estimator: Estimator | None = None,
    db_fraction: float = 1.0,
    rng: int | np.random.Generator | None = 2005,
    executor: str = "serial",
    jobs: int | None = None,
    failure_policy: str = "raise",
    retries: int | None = None,
    task_timeout: float | None = None,
    faults: FaultPlan | None = None,
    trace: str | None = None,
) -> SamplingStudy:
    """The §6.2 sweep.  The paper used trials=2000; default is bench-scale.

    Every (ρ, K) cell replays the same per-trial seeds (paired design), so
    cell differences are due to the configuration, not sampling luck.

    The default budget is 400 time steps rather than the paper's 100: our
    simulator's PRO converges (or falsely certifies, at K=1) within ~20–100
    steps depending on K, so the horizon must extend beyond the K=1
    false-certificate point for the sampling-quality/sampling-cost trade-off
    to be visible — the same trade-off the paper reports, at a shifted
    horizon.  See EXPERIMENTS.md.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if any(k < 1 for k in k_values):
        raise ValueError(f"sample counts must be >= 1, got {k_values}")
    master = as_generator(rng)
    surrogate, db = gs2_problem(fraction=db_fraction, rng=master)
    space = surrogate.space()
    est = estimator if estimator is not None else MinEstimator()
    cells = [
        (
            f"rho={rho:g},K={k}",
            _SamplingCell(
                db=db,
                space=space,
                rho=float(rho),
                k=int(k),
                alpha=alpha,
                budget=budget,
                estimator=est,
            ),
        )
        for rho in rho_values
        for k in k_values
    ]
    # run_sweep draws the trial-seed vector from `master` exactly as this
    # study historically did, so results are unchanged across the refactor.
    sweep = run_sweep(
        cells, trials=trials, rng=master, executor=executor, jobs=jobs,
        failure_policy=failure_policy, retries=retries,
        task_timeout=task_timeout, faults=faults, trace=trace,
    )
    mean = np.empty((len(rho_values), len(k_values)))
    std = np.empty_like(mean)
    for i, rho in enumerate(rho_values):
        for j, k in enumerate(k_values):
            cell = sweep[f"rho={rho:g},K={k}"]
            mean[i, j] = cell.ntt_mean
            std[i, j] = cell.ntt_std
    return SamplingStudy(
        rho_values=tuple(float(r) for r in rho_values),
        k_values=tuple(int(k) for k in k_values),
        mean_ntt=mean,
        std_ntt=std,
        trials=trials,
        meta={
            "budget": budget,
            "alpha": alpha,
            "estimator": est.name,
            "db_fraction": db_fraction,
        },
    )
