"""Shared builders for the experiment modules."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro._util import as_generator
from repro.apps.database import PerformanceDatabase
from repro.apps.gs2 import GS2Surrogate
from repro.core.base import BatchTuner
from repro.core.pro import ParallelRankOrdering
from repro.core.sro import SequentialRankOrdering
from repro.search.annealing import SimulatedAnnealing
from repro.search.coordinate import CoordinateDescent
from repro.search.genetic import GeneticAlgorithm
from repro.search.neldermead import NelderMead
from repro.search.random_search import RandomSearch
from repro.space import ParameterSpace

__all__ = ["gs2_problem", "tuner_factory", "TUNER_NAMES"]


def gs2_problem(
    *,
    fraction: float = 1.0,
    k_neighbors: int = 4,
    rng: int | np.random.Generator | None = 0,
) -> tuple[GS2Surrogate, PerformanceDatabase]:
    """The §6 setup: GS2 surrogate sampled into a performance database.

    ``fraction < 1`` reproduces the paper's sparse database, where missing
    configurations are served by weighted nearest-neighbour interpolation.
    """
    surrogate = GS2Surrogate()
    db = PerformanceDatabase.from_function(
        surrogate,
        surrogate.space(),
        fraction=fraction,
        k_neighbors=k_neighbors,
        rng=rng,
    )
    return surrogate, db


#: names accepted by :func:`tuner_factory`
TUNER_NAMES = (
    "pro",
    "pro_minimal",
    "pro_greedy",
    "pro_eager",
    "pro_auto",
    "sro",
    "neldermead",
    "annealing",
    "genetic",
    "random",
    "coordinate",
)


def tuner_factory(
    name: str, *, r: float = 0.2, rng: int | np.random.Generator | None = None
) -> Callable[[ParameterSpace], BatchTuner]:
    """A named tuner constructor (used by benches and the tuning server)."""
    gen = as_generator(rng)

    def build(space: ParameterSpace) -> BatchTuner:
        if name == "pro":
            return ParallelRankOrdering(space, r=r)
        if name == "pro_minimal":
            return ParallelRankOrdering(space, r=r, simplex_shape="minimal")
        if name == "pro_greedy":
            return ParallelRankOrdering(space, r=r, greedy_acceptance=True)
        if name == "pro_eager":
            return ParallelRankOrdering(space, r=r, eager_expansion=True)
        if name == "pro_auto":
            return ParallelRankOrdering(space, auto_size=True)
        if name == "sro":
            return SequentialRankOrdering(space, r=r)
        if name == "neldermead":
            return NelderMead(space, r=r)
        if name == "annealing":
            return SimulatedAnnealing(space, rng=gen)
        if name == "genetic":
            return GeneticAlgorithm(space, rng=gen)
        if name == "random":
            return RandomSearch(space, rng=gen)
        if name == "coordinate":
            return CoordinateDescent(space)
        raise ValueError(f"unknown tuner {name!r}; known: {TUNER_NAMES}")

    return build
