"""One module per paper figure (plus ablations).

Every experiment exposes a ``run_*`` function returning a result object with
the data series the corresponding figure plots, and ``lines()`` /
``format_table`` helpers the benchmark harness prints.  All experiments take
a ``trials`` knob: benches default to a laptop-scale setting; pass the
paper-scale value for full fidelity (Fig. 10 used 2000 simulations per
configuration).
"""

from repro.experiments import _fmt
from repro.experiments.fig01_metrics import run_metric_comparison
from repro.experiments.fig02_geometry import run_geometry_demo
from repro.experiments.fig03_trace import simulate_gs2_trace
from repro.experiments.fig08_surface import run_surface_slice
from repro.experiments.fig09_simplex import run_initial_simplex_study
from repro.experiments.fig10_sampling import run_sampling_study

__all__ = [
    "_fmt",
    "run_metric_comparison",
    "run_geometry_demo",
    "simulate_gs2_trace",
    "run_surface_slice",
    "run_initial_simplex_study",
    "run_sampling_study",
]
