"""Figure 8 — a 2-D slice of the GS2 performance surface.

The paper plots GS2 performance as a function of two tunable parameters
with the third fixed, and observes the surface "is not smooth and contains
multiple local minimums".  We regenerate the slice from the surrogate and
quantify both claims:

* **multimodality** — the count of strict local minima on the slice lattice;
* **non-smoothness** — the median relative jump ``|f(neighbour) - f| / f``
  between adjacent lattice points (a smooth surface on this lattice would
  show uniformly small jumps; the imbalance/cache sawtooths do not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.gs2 import GS2Surrogate

__all__ = ["SurfaceSlice", "run_surface_slice"]


@dataclass(frozen=True)
class SurfaceSlice:
    """A (len(x) × len(y)) cost matrix over two parameters, third fixed."""

    x_name: str
    y_name: str
    fixed_name: str
    fixed_value: float
    x_values: np.ndarray
    y_values: np.ndarray
    costs: np.ndarray  # shape (len(x_values), len(y_values))
    n_local_minima: int
    median_relative_jump: float
    meta: dict = field(default_factory=dict)

    def minimum(self) -> tuple[float, float, float]:
        """(x, y, cost) of the slice minimum."""
        i, j = np.unravel_index(int(np.argmin(self.costs)), self.costs.shape)
        return float(self.x_values[i]), float(self.y_values[j]), float(self.costs[i, j])

    def dynamic_range(self) -> float:
        """max/min cost ratio over the slice."""
        return float(self.costs.max() / self.costs.min())

    def rows(self) -> list[list[object]]:
        x, y, c = self.minimum()
        return [
            ["slice", f"{self.x_name} x {self.y_name} @ {self.fixed_name}={self.fixed_value:g}"],
            ["grid", f"{self.costs.shape[0]} x {self.costs.shape[1]}"],
            ["min cost", c],
            ["argmin", f"({x:g}, {y:g})"],
            ["max/min ratio", self.dynamic_range()],
            ["local minima", self.n_local_minima],
            ["median relative jump", self.median_relative_jump],
        ]


def _slice_local_minima(costs: np.ndarray) -> int:
    """Strict local minima under 4-neighbour adjacency on the slice."""
    n_min = 0
    rows, cols = costs.shape
    for i in range(rows):
        for j in range(cols):
            v = costs[i, j]
            neighbors = []
            if i > 0:
                neighbors.append(costs[i - 1, j])
            if i < rows - 1:
                neighbors.append(costs[i + 1, j])
            if j > 0:
                neighbors.append(costs[i, j - 1])
            if j < cols - 1:
                neighbors.append(costs[i, j + 1])
            if all(v <= nb for nb in neighbors) and any(v < nb for nb in neighbors):
                n_min += 1
            elif all(v <= nb for nb in neighbors) and not neighbors:
                n_min += 1
    return n_min


def run_surface_slice(
    *,
    x_name: str = "ntheta",
    y_name: str = "negrid",
    fixed: dict[str, float] | None = None,
    surrogate: GS2Surrogate | None = None,
) -> SurfaceSlice:
    """Evaluate the surrogate over a 2-D lattice slice (Fig. 8)."""
    surrogate = surrogate if surrogate is not None else GS2Surrogate()
    space = surrogate.space()
    fixed = dict(fixed) if fixed else {"nodes": 32.0}
    names = set(space.names)
    if x_name not in names or y_name not in names:
        raise ValueError(f"unknown axis names {x_name!r}/{y_name!r}")
    if set(fixed) != names - {x_name, y_name}:
        raise ValueError(
            f"fixed must pin exactly the remaining parameter(s); "
            f"got {sorted(fixed)} for axes {x_name}, {y_name}"
        )
    (fixed_name, fixed_value), = fixed.items()
    sub, embed = space.slice({fixed_name: float(fixed_value)})
    lifted = embed.lift(surrogate)
    x_values = space[x_name].values()
    y_values = space[y_name].values()
    costs = np.empty((x_values.size, y_values.size), dtype=float)
    # sub-space point order follows the full space's declaration order.
    x_first = sub.names.index(x_name) == 0
    for i, xv in enumerate(x_values):
        for j, yv in enumerate(y_values):
            pt = [xv, yv] if x_first else [yv, xv]
            costs[i, j] = lifted(pt)
    # Non-smoothness: relative jumps to the +x and +y neighbours.
    jumps = []
    if costs.shape[0] > 1:
        jumps.append(np.abs(np.diff(costs, axis=0)) / costs[:-1, :])
    if costs.shape[1] > 1:
        jumps.append(np.abs(np.diff(costs, axis=1)) / costs[:, :-1])
    all_jumps = np.concatenate([j.ravel() for j in jumps]) if jumps else np.array([0.0])
    return SurfaceSlice(
        x_name=x_name,
        y_name=y_name,
        fixed_name=fixed_name,
        fixed_value=float(fixed_value),
        x_values=x_values,
        y_values=y_values,
        costs=costs,
        n_local_minima=_slice_local_minima(costs),
        median_relative_jump=float(np.median(all_jumps)),
        meta={"surrogate": repr(surrogate.__dict__)},
    )
