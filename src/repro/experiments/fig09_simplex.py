"""Figure 9 — initial simplex shape and size study (§6.1).

The paper sweeps the *relative initial simplex size* ``r`` for two simplex
shapes — the minimal N+1-vertex simplex and the 2N-vertex axial simplex —
and reads off three findings:

1. the 2N simplex "clearly outperforms" the N+1 simplex;
2. neither very small nor very large ``r`` performs well (small simplexes
   collapse onto the centre on a discrete lattice and get stuck near
   central local minima; large ones pay for terrible marginal
   configurations during the transient);
3. ``r = 0.2`` is a sensible default (the paper's §3.2.3 recommendation).

Each (shape, r) cell averages Normalized Total Time over trials that vary
the database subsample (the paper's database is sparse) and the noise
stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_generator
from repro.apps.database import PerformanceDatabase
from repro.core.pro import ParallelRankOrdering
from repro.core.sampling import MinEstimator, SamplingPlan
from repro.experiments.common import gs2_problem
from repro.harmony.session import TuningSession
from repro.variability.models import ParetoNoise

__all__ = ["InitialSimplexStudy", "run_initial_simplex_study"]

#: the r sweep reported in the figure
DEFAULT_R_VALUES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8)


@dataclass(frozen=True)
class InitialSimplexStudy:
    """Mean NTT per (shape, r) cell."""

    r_values: tuple[float, ...]
    shapes: tuple[str, ...]
    #: mean NTT, shape (len(shapes), len(r_values))
    mean_ntt: np.ndarray
    #: std of NTT across trials, same shape
    std_ntt: np.ndarray
    trials: int
    meta: dict = field(default_factory=dict)

    def best_r(self, shape: str) -> float:
        i = self.shapes.index(shape)
        return float(self.r_values[int(np.argmin(self.mean_ntt[i]))])

    def axial_beats_minimal(self) -> bool:
        """The paper's headline: 2N wins on average over the sweep."""
        i_ax = self.shapes.index("axial")
        i_mn = self.shapes.index("minimal")
        return float(self.mean_ntt[i_ax].mean()) < float(self.mean_ntt[i_mn].mean())

    def interior_r_wins(self, shape: str = "axial") -> bool:
        """Neither the smallest nor the largest swept r is optimal."""
        i = self.shapes.index(shape)
        k = int(np.argmin(self.mean_ntt[i]))
        return 0 < k < len(self.r_values) - 1

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for i, shape in enumerate(self.shapes):
            for j, r in enumerate(self.r_values):
                out.append(
                    [shape, r, float(self.mean_ntt[i, j]), float(self.std_ntt[i, j])]
                )
        return out


def run_initial_simplex_study(
    *,
    r_values: tuple[float, ...] = DEFAULT_R_VALUES,
    shapes: tuple[str, ...] = ("minimal", "axial"),
    trials: int = 20,
    budget: int = 100,
    rho: float = 0.05,
    db_fraction: float = 0.7,
    rng: int | np.random.Generator | None = 42,
) -> InitialSimplexStudy:
    """Sweep (shape, r) and average NTT over randomized trials."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    master = as_generator(rng)
    surrogate, _ = gs2_problem(rng=master)
    space = surrogate.space()
    noise = ParetoNoise(rho=rho) if rho > 0 else None
    mean = np.empty((len(shapes), len(r_values)))
    std = np.empty_like(mean)
    # Pre-build one database per trial so each (shape, r) cell sees the same
    # sequence of worlds — a paired design that sharpens the comparison.
    dbs = [
        PerformanceDatabase.from_function(
            surrogate, space, fraction=db_fraction, rng=master.spawn(1)[0]
        )
        for _ in range(trials)
    ]
    trial_seeds = [int(s) for s in master.integers(0, 2**63 - 1, size=trials)]
    for i, shape in enumerate(shapes):
        for j, r in enumerate(r_values):
            ntts = np.empty(trials)
            for t in range(trials):
                tuner = ParallelRankOrdering(space, r=r, simplex_shape=shape)
                session = TuningSession(
                    tuner,
                    dbs[t],
                    noise=noise,
                    budget=budget,
                    plan=SamplingPlan(1, MinEstimator()),
                    rng=trial_seeds[t],
                )
                ntts[t] = session.run().normalized_total_time()
            mean[i, j] = ntts.mean()
            std[i, j] = ntts.std()
    return InitialSimplexStudy(
        r_values=tuple(float(r) for r in r_values),
        shapes=tuple(shapes),
        mean_ntt=mean,
        std_ntt=std,
        trials=trials,
        meta={"budget": budget, "rho": rho, "db_fraction": db_fraction},
    )
