"""Figure 9 — initial simplex shape and size study (§6.1).

The paper sweeps the *relative initial simplex size* ``r`` for two simplex
shapes — the minimal N+1-vertex simplex and the 2N-vertex axial simplex —
and reads off three findings:

1. the 2N simplex "clearly outperforms" the N+1 simplex;
2. neither very small nor very large ``r`` performs well (small simplexes
   collapse onto the centre on a discrete lattice and get stuck near
   central local minima; large ones pay for terrible marginal
   configurations during the transient);
3. ``r = 0.2`` is a sensible default (the paper's §3.2.3 recommendation).

Each (shape, r) cell averages Normalized Total Time over trials that vary
the database subsample (the paper's database is sparse) and the noise
stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_generator
from repro.apps.database import PerformanceDatabase
from repro.core.pro import ParallelRankOrdering
from repro.core.sampling import MinEstimator, SamplingPlan
from repro.experiments.common import gs2_problem
from repro.experiments.runner import run_sweep
from repro.faults.plan import FaultPlan
from repro.harmony.session import TuningSession
from repro.space import ParameterSpace
from repro.variability.models import ParetoNoise

__all__ = ["InitialSimplexStudy", "run_initial_simplex_study"]

#: the r sweep reported in the figure
DEFAULT_R_VALUES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8)


@dataclass(frozen=True)
class InitialSimplexStudy:
    """Mean NTT per (shape, r) cell."""

    r_values: tuple[float, ...]
    shapes: tuple[str, ...]
    #: mean NTT, shape (len(shapes), len(r_values))
    mean_ntt: np.ndarray
    #: std of NTT across trials, same shape
    std_ntt: np.ndarray
    trials: int
    meta: dict = field(default_factory=dict)

    def best_r(self, shape: str) -> float:
        i = self.shapes.index(shape)
        return float(self.r_values[int(np.argmin(self.mean_ntt[i]))])

    def axial_beats_minimal(self) -> bool:
        """The paper's headline: 2N wins on average over the sweep."""
        i_ax = self.shapes.index("axial")
        i_mn = self.shapes.index("minimal")
        return float(self.mean_ntt[i_ax].mean()) < float(self.mean_ntt[i_mn].mean())

    def interior_r_wins(self, shape: str = "axial") -> bool:
        """Neither the smallest nor the largest swept r is optimal."""
        i = self.shapes.index(shape)
        k = int(np.argmin(self.mean_ntt[i]))
        return 0 < k < len(self.r_values) - 1

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for i, shape in enumerate(self.shapes):
            for j, r in enumerate(self.r_values):
                out.append(
                    [shape, r, float(self.mean_ntt[i, j]), float(self.std_ntt[i, j])]
                )
        return out


@dataclass(frozen=True)
class _SimplexCell:
    """Picklable trial-aware factory for one (shape, r) cell.

    The study pairs *worlds*, not just seeds: trial t of every cell runs
    against the same pre-built database, so the factory needs the trial
    index as well as the seed — hence ``trial_aware``.
    """

    dbs: tuple[PerformanceDatabase, ...]
    space: ParameterSpace
    shape: str
    r: float
    rho: float
    budget: int

    trial_aware = True

    def __call__(self, seed: int, trial: int) -> TuningSession:
        tuner = ParallelRankOrdering(
            self.space, r=self.r, simplex_shape=self.shape
        )
        noise = ParetoNoise(rho=self.rho) if self.rho > 0 else None
        return TuningSession(
            tuner,
            self.dbs[trial],
            noise=noise,
            budget=self.budget,
            plan=SamplingPlan(1, MinEstimator()),
            rng=seed,
        )


def run_initial_simplex_study(
    *,
    r_values: tuple[float, ...] = DEFAULT_R_VALUES,
    shapes: tuple[str, ...] = ("minimal", "axial"),
    trials: int = 20,
    budget: int = 100,
    rho: float = 0.05,
    db_fraction: float = 0.7,
    rng: int | np.random.Generator | None = 42,
    executor: str = "serial",
    jobs: int | None = None,
    failure_policy: str = "raise",
    retries: int | None = None,
    task_timeout: float | None = None,
    faults: FaultPlan | None = None,
    trace: str | None = None,
) -> InitialSimplexStudy:
    """Sweep (shape, r) and average NTT over randomized trials.

    ``failure_policy``/``retries``/``task_timeout``/``faults`` pass through
    to :func:`~repro.experiments.runner.run_sweep`; under ``"skip"`` a cell
    averages its surviving trials (``sweep.meta["n_failed"]`` records the
    losses).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    master = as_generator(rng)
    surrogate, _ = gs2_problem(rng=master)
    space = surrogate.space()
    # Pre-build one database per trial so each (shape, r) cell sees the same
    # sequence of worlds — a paired design that sharpens the comparison.
    dbs = tuple(
        PerformanceDatabase.from_function(
            surrogate, space, fraction=db_fraction, rng=master.spawn(1)[0]
        )
        for _ in range(trials)
    )
    cells = [
        (
            f"{shape},r={r:g}",
            _SimplexCell(
                dbs=dbs,
                space=space,
                shape=shape,
                r=float(r),
                rho=rho,
                budget=budget,
            ),
        )
        for shape in shapes
        for r in r_values
    ]
    # run_sweep draws the trial-seed vector from `master` exactly as this
    # study historically did, so results are unchanged across the refactor.
    sweep = run_sweep(
        cells, trials=trials, rng=master, executor=executor, jobs=jobs,
        failure_policy=failure_policy, retries=retries,
        task_timeout=task_timeout, faults=faults, trace=trace,
    )
    mean = np.empty((len(shapes), len(r_values)))
    std = np.empty_like(mean)
    for i, shape in enumerate(shapes):
        for j, r in enumerate(r_values):
            cell = sweep[f"{shape},r={r:g}"]
            mean[i, j] = cell.ntt_mean
            std[i, j] = cell.ntt_std
    return InitialSimplexStudy(
        r_values=tuple(float(r) for r in r_values),
        shapes=tuple(shapes),
        mean_ntt=mean,
        std_ntt=std,
        trials=trials,
        meta={"budget": budget, "rho": rho, "db_fraction": db_fraction},
    )
