"""Statistical machinery for experiment comparisons.

Heavy-tailed metrics make naive t-tests unreliable; the tools here are the
nonparametric ones the benchmark claims actually need:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval for any
  statistic of one sample;
* :func:`paired_comparison` — paired-design comparison of two condition
  vectors (the sweep runner replays seeds across cells, so per-trial
  differences are meaningful): mean difference with a bootstrap CI, win
  rate, and a sign-test p-value;
* :func:`significantly_less` — the one-liner benches use to claim "A beats
  B" with error control instead of comparing two noisy means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro._util import as_generator

__all__ = ["bootstrap_ci", "PairedComparison", "paired_comparison", "significantly_less"]


def bootstrap_ci(
    values: Sequence[float],
    *,
    stat: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: int | np.random.Generator | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for ``stat`` of ``values``."""
    arr = np.asarray(values, dtype=float).ravel()
    arr = arr[np.isfinite(arr)]
    if arr.size < 2:
        raise ValueError(f"need at least 2 finite values, got {arr.size}")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    if n_boot < 100:
        raise ValueError(f"n_boot must be >= 100, got {n_boot}")
    gen = as_generator(rng)
    idx = gen.integers(0, arr.size, size=(n_boot, arr.size))
    stats = np.array([stat(arr[row]) for row in idx], dtype=float)
    lo = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, lo)),
        float(np.quantile(stats, 1.0 - lo)),
    )


def _sign_test_p(n_less: int, n_greater: int) -> float:
    """Two-sided exact sign test (ties dropped)."""
    n = n_less + n_greater
    if n == 0:
        return 1.0
    k = min(n_less, n_greater)
    # P[X <= k] for X ~ Binom(n, 1/2), doubled and capped.
    total = 0.0
    for i in range(k + 1):
        total += math.comb(n, i)
    p = 2.0 * total / (2.0**n)
    return min(1.0, p)


@dataclass(frozen=True)
class PairedComparison:
    """Summary of a paired A-vs-B comparison (lower is better)."""

    n: int
    mean_diff: float            #: mean(A - B); negative favours A
    ci_low: float
    ci_high: float
    win_rate: float             #: fraction of trials where A < B
    p_sign: float               #: two-sided sign-test p-value

    @property
    def a_significantly_less(self) -> bool:
        """A < B with the bootstrap CI excluding zero and wins dominating."""
        return self.ci_high < 0.0 and self.win_rate > 0.5

    def describe(self) -> str:
        return (
            f"mean diff {self.mean_diff:+.4g} "
            f"[{self.ci_low:.4g}, {self.ci_high:.4g}] (95% CI), "
            f"win rate {self.win_rate:.0%}, sign-test p={self.p_sign:.3g}"
        )


def paired_comparison(
    a: Sequence[float],
    b: Sequence[float],
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: int | np.random.Generator | None = 0,
) -> PairedComparison:
    """Compare paired condition vectors (same trials, same seeds)."""
    a_arr = np.asarray(a, dtype=float).ravel()
    b_arr = np.asarray(b, dtype=float).ravel()
    if a_arr.shape != b_arr.shape:
        raise ValueError(f"paired vectors must match: {a_arr.shape} vs {b_arr.shape}")
    mask = np.isfinite(a_arr) & np.isfinite(b_arr)
    a_arr, b_arr = a_arr[mask], b_arr[mask]
    if a_arr.size < 2:
        raise ValueError("need at least 2 paired finite trials")
    diffs = a_arr - b_arr
    lo, hi = bootstrap_ci(
        diffs, confidence=confidence, n_boot=n_boot, rng=rng
    )
    wins = int(np.sum(diffs < 0))
    losses = int(np.sum(diffs > 0))
    return PairedComparison(
        n=int(diffs.size),
        mean_diff=float(diffs.mean()),
        ci_low=lo,
        ci_high=hi,
        win_rate=wins / diffs.size,
        p_sign=_sign_test_p(wins, losses),
    )


def significantly_less(
    a: Sequence[float], b: Sequence[float], **kwargs
) -> bool:
    """True when paired condition A is credibly lower than B."""
    return paired_comparison(a, b, **kwargs).a_significantly_less
