"""Figure 1 — why online tuning needs the Total_Time metric.

The paper's Fig. 1 plots, for three direct-search variants on the same
problem, (a) the per-iteration worst-case time ``T_k`` and (b) the
cumulative ``Total_Time`` — and shows the two metrics *rank the algorithms
differently*: the variant with the best asymptotic iteration time
(Algorithm 3) loses on total time because of its expensive transient, while
Algorithm 1, despite "significant fluctuations in the first 100 time
steps", wins the metric that matters online.

We reproduce the comparison with three variants of the modified PRO under
heavy-tailed noise (ρ = 0.3, Pareto α = 1.7), differing only in the sample
count K of the min-operator estimator:

* **Algorithm 1 = PRO K=1** — every estimate is a single noisy sample:
  fast, fluctuating transient, decisions occasionally corrupted;
* **Algorithm 2 = PRO K=2** — the middle ground;
* **Algorithm 3 = PRO K=5** — robust estimates and the best final
  configuration, but every evaluation costs five application time steps.

On a short run (the online regime) K=1 wins Total_Time while K=5 wins the
final iteration time — the exact ranking flip of Fig. 1.  The result object
reports both verdicts; whether they disagree is seed-dependent (the paper,
too, shows one illustrative run), so the default seed is one where the flip
manifests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_generator
from repro.core.pro import ParallelRankOrdering
from repro.core.sampling import MinEstimator, SamplingPlan
from repro.experiments.common import gs2_problem
from repro.harmony.session import TuningSession
from repro.variability.models import ParetoNoise

__all__ = ["MetricComparison", "run_metric_comparison"]


@dataclass(frozen=True)
class MetricComparison:
    """Per-algorithm series and the two metrics' verdicts."""

    names: tuple[str, ...]
    #: per-step T_k series, one array per algorithm (Fig. 1a)
    step_time_series: tuple[np.ndarray, ...]
    #: cumulative Total_Time series (Fig. 1b)
    cumulative_series: tuple[np.ndarray, ...]
    #: mean T_k over the final window (the "final value" read off Fig. 1a)
    tail_mean_step_time: tuple[float, ...]
    total_time: tuple[float, ...]
    #: noise-free cost of each algorithm's final incumbent
    final_true_cost: tuple[float, ...]
    meta: dict = field(default_factory=dict)

    def winner_by_tail(self) -> str:
        """Algorithm a Fig. 1(a) reader would pick."""
        return self.names[int(np.argmin(self.tail_mean_step_time))]

    def winner_by_total(self) -> str:
        """Algorithm the online metric actually favours."""
        return self.names[int(np.argmin(self.total_time))]

    def metrics_disagree(self) -> bool:
        return self.winner_by_tail() != self.winner_by_total()

    def transient_fluctuation(self, name: str, window: int = 100) -> float:
        """Std of T_k over the first *window* steps (Fig. 1a's wiggles)."""
        series = self.step_time_series[self.names.index(name)]
        return float(series[: min(window, series.size)].std())

    def rows(self) -> list[list[object]]:
        return [
            [name, float(tail), float(total), float(cost)]
            for name, tail, total, cost in zip(
                self.names,
                self.tail_mean_step_time,
                self.total_time,
                self.final_true_cost,
            )
        ]


def run_metric_comparison(
    *,
    budget: int = 200,
    rho: float = 0.3,
    k_values: tuple[int, ...] = (1, 2, 5),
    tail_window: int = 50,
    rng: int | np.random.Generator | None = 3,
) -> MetricComparison:
    """Run the three PRO variants and contrast the two metrics."""
    if budget < 2 * tail_window:
        raise ValueError("budget must comfortably exceed the tail window")
    master = as_generator(rng)
    surrogate, db = gs2_problem(rng=master)
    space = surrogate.space()
    noise = ParetoNoise(rho=rho) if rho > 0 else None
    names, steps, cums, tails, totals, finals = [], [], [], [], [], []
    for k in k_values:
        tuner = ParallelRankOrdering(space, r=0.2)
        result = TuningSession(
            tuner,
            db,
            noise=noise,
            budget=budget,
            plan=SamplingPlan(int(k), MinEstimator()),
            rng=master.spawn(1)[0],
        ).run()
        names.append(f"PRO K={k}")
        steps.append(result.step_times)
        cums.append(result.cumulative_times())
        tails.append(float(result.step_times[-tail_window:].mean()))
        totals.append(result.total_time())
        finals.append(result.best_true_cost)
    return MetricComparison(
        names=tuple(names),
        step_time_series=tuple(steps),
        cumulative_series=tuple(cums),
        tail_mean_step_time=tuple(tails),
        total_time=tuple(totals),
        final_true_cost=tuple(finals),
        meta={
            "budget": budget,
            "rho": rho,
            "tail_window": tail_window,
            "k_values": tuple(int(k) for k in k_values),
        },
    )
