"""Figure 2 — the three rank-ordering transforms of a 2-D simplex.

The paper's Fig. 2 shows a 3-point simplex in 2-D space and the simplexes
obtained by reflecting, shrinking, and expanding it around the best vertex
``v0``.  This module regenerates those vertex coordinates (the geometry the
rest of the system is built on) and verifies the defining identities:

* reflection negates the offset from v0:  ``r_j - v0 = -(v_j - v0)``;
* expansion doubles the reflected offset: ``e_j - v0 = -2 (v_j - v0)``;
* shrink halves the offset:               ``s_j - v0 = (v_j - v0) / 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.simplex import Simplex, Vertex, expand, reflect, shrink

__all__ = ["GeometryDemo", "run_geometry_demo"]


@dataclass(frozen=True)
class GeometryDemo:
    """Original and transformed simplex vertex coordinates."""

    original: np.ndarray     # (3, 2): v0, v1, v2
    reflected: np.ndarray    # (3, 2): v0 kept, others reflected
    expanded: np.ndarray
    shrunk: np.ndarray

    def identities_hold(self, tol: float = 1e-12) -> bool:
        v0 = self.original[0]
        off = self.original[1:] - v0
        return bool(
            np.allclose(self.reflected[1:] - v0, -off, atol=tol)
            and np.allclose(self.expanded[1:] - v0, -2.0 * off, atol=tol)
            and np.allclose(self.shrunk[1:] - v0, 0.5 * off, atol=tol)
        )

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for label, pts in [
            ("original", self.original),
            ("reflected", self.reflected),
            ("expanded", self.expanded),
            ("shrunk", self.shrunk),
        ]:
            for j, p in enumerate(pts):
                out.append([label, f"v{j}", float(p[0]), float(p[1])])
        return out


def run_geometry_demo(
    vertices: np.ndarray | None = None,
) -> GeometryDemo:
    """Build the Fig. 2 transforms for a (given or default) 2-D simplex."""
    if vertices is None:
        vertices = np.array([[1.0, 1.0], [3.0, 1.5], [2.0, 3.0]])
    pts = np.asarray(vertices, dtype=float)
    if pts.shape != (3, 2):
        raise ValueError(f"the Fig. 2 demo wants a (3, 2) simplex, got {pts.shape}")
    # Values chosen so pts[0] is the best vertex, matching the paper's v0.
    simplex = Simplex([Vertex(p, float(i)) for i, p in enumerate(pts)])
    v0 = simplex.best.point
    moving = [v.point for v in simplex.vertices[1:]]
    return GeometryDemo(
        original=np.vstack([v0] + moving),
        reflected=np.vstack([v0] + [reflect(v0, p) for p in moving]),
        expanded=np.vstack([v0] + [expand(v0, p) for p in moving]),
        shrunk=np.vstack([v0] + [shrink(v0, p) for p in moving]),
    )
