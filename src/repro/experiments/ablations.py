"""Ablation studies for the design choices DESIGN.md calls out.

Three studies, each exercising one deliberate choice in the paper's design:

* :func:`run_variant_comparison` — PRO's acceptance/expansion rules and its
  parallel structure, against SRO, Nelder–Mead and the §2 baselines
  (the "alternative parallel variants" of §3.2);
* :func:`run_estimator_comparison` — min vs mean vs median under heavy- and
  light-tailed noise (the §5.1 argument for the min operator);
* :func:`run_adaptive_k_study` — fixed-K sampling vs the adaptive-K
  controller (§5.2's stated future work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_generator
from repro.core.adaptive import AdaptiveSamplingController
from repro.core.pro import ParallelRankOrdering
from repro.core.sampling import (
    Estimator,
    MeanEstimator,
    MedianEstimator,
    MinEstimator,
    SamplingPlan,
)
from repro.experiments.common import gs2_problem, tuner_factory
from repro.experiments.runner import run_sweep
from repro.faults.plan import FaultPlan
from repro.harmony.session import TuningSession
from repro.variability.models import GaussianNoise, NoiseModel, ParetoNoise

__all__ = [
    "AblationTable",
    "run_variant_comparison",
    "run_estimator_comparison",
    "run_adaptive_k_study",
]


@dataclass(frozen=True)
class AblationTable:
    """Generic named-row result: mean NTT and mean final true cost."""

    row_names: tuple[str, ...]
    mean_ntt: np.ndarray
    mean_final_cost: np.ndarray
    std_ntt: np.ndarray
    trials: int
    meta: dict = field(default_factory=dict)

    def best_by_ntt(self) -> str:
        return self.row_names[int(np.argmin(self.mean_ntt))]

    def ntt_of(self, name: str) -> float:
        return float(self.mean_ntt[self.row_names.index(name)])

    def final_cost_of(self, name: str) -> float:
        return float(self.mean_final_cost[self.row_names.index(name)])

    def rows(self) -> list[list[object]]:
        return [
            [name, float(ntt), float(std), float(cost)]
            for name, ntt, std, cost in zip(
                self.row_names, self.mean_ntt, self.std_ntt, self.mean_final_cost
            )
        ]


def _run_cells(
    configs: list[tuple[str, dict]],
    *,
    trials: int,
    budget: int,
    rng: int | np.random.Generator | None,
    db_fraction: float = 1.0,
    executor: str = "serial",
    jobs: int | None = None,
    failure_policy: str = "raise",
    retries: int | None = None,
    task_timeout: float | None = None,
    faults: FaultPlan | None = None,
) -> AblationTable:
    """Run one session per (config, trial) via the paired-seed sweep runner.

    Each config dict provides ``tuner`` (a factory name or callable),
    optional ``noise`` (NoiseModel), ``plan`` (SamplingPlan) and
    ``controller`` (factory returning a fresh AdaptiveSamplingController).
    The cell factories are closures, so ``executor`` is limited to
    ``"serial"``/``"thread"`` here.  Failure knobs pass through to
    :func:`~repro.experiments.runner.run_sweep` unchanged.
    """
    master = as_generator(rng)
    surrogate, db = gs2_problem(fraction=db_fraction, rng=master)
    space = surrogate.space()

    def make_cell(cfg: dict):
        def build(trial_seed: int) -> TuningSession:
            seed = np.random.default_rng(trial_seed)
            tuner_build = cfg["tuner"]
            if isinstance(tuner_build, str):
                tuner = tuner_factory(tuner_build, rng=seed.spawn(1)[0])(space)
            else:
                tuner = tuner_build(space, seed.spawn(1)[0])
            controller_factory = cfg.get("controller")
            return TuningSession(
                tuner,
                db,
                noise=cfg.get("noise"),
                budget=budget,
                plan=cfg.get("plan") or SamplingPlan(),
                controller=controller_factory() if controller_factory else None,
                rng=seed,
            )

        return build

    sweep = run_sweep(
        [(name, make_cell(cfg)) for name, cfg in configs],
        trials=trials,
        rng=master,
        executor=executor,
        jobs=jobs,
        failure_policy=failure_policy,
        retries=retries,
        task_timeout=task_timeout,
        faults=faults,
    )
    return AblationTable(
        row_names=sweep.names,
        mean_ntt=np.asarray([c.ntt_mean for c in sweep.cells]),
        std_ntt=np.asarray([c.ntt_std for c in sweep.cells]),
        mean_final_cost=np.asarray([c.final_cost_mean for c in sweep.cells]),
        trials=trials,
        meta={"budget": budget},
    )


def run_variant_comparison(
    *,
    trials: int = 30,
    budget: int = 150,
    rho: float = 0.1,
    rng: int | np.random.Generator | None = 13,
    executor: str = "serial",
    jobs: int | None = None,
    failure_policy: str = "raise",
    retries: int | None = None,
    task_timeout: float | None = None,
) -> AblationTable:
    """PRO vs its ablated variants vs the sequential baselines."""
    noise = ParetoNoise(rho=rho) if rho > 0 else None
    plan = SamplingPlan(1, MinEstimator())
    configs = [
        (name, {"tuner": name, "noise": noise, "plan": plan})
        for name in (
            "pro",
            "pro_greedy",
            "pro_eager",
            "pro_minimal",
            "pro_auto",
            "sro",
            "neldermead",
            "coordinate",
            "annealing",
            "genetic",
            "random",
        )
    ]
    table = _run_cells(
        configs, trials=trials, budget=budget, rng=rng,
        executor=executor, jobs=jobs, failure_policy=failure_policy,
        retries=retries, task_timeout=task_timeout,
    )
    table.meta.update({"rho": rho})
    return table


def run_estimator_comparison(
    *,
    trials: int = 30,
    budget: int = 150,
    k: int = 3,
    rho: float = 0.2,
    rng: int | np.random.Generator | None = 17,
    executor: str = "serial",
    jobs: int | None = None,
    failure_policy: str = "raise",
    retries: int | None = None,
    task_timeout: float | None = None,
) -> dict[str, AblationTable]:
    """Min vs mean vs median, under Pareto (heavy) and Gaussian (light) noise.

    The §5.1 prediction: under heavy tails the min operator dominates the
    mean; under light (finite-variance) noise the gap closes or reverses.
    """
    from repro.variability.models import ExponentialNoise, TruncatedParetoNoise

    estimators: list[Estimator] = [MinEstimator(), MeanEstimator(), MedianEstimator()]
    out: dict[str, AblationTable] = {}
    for label, noise in (
        ("pareto", ParetoNoise(rho=rho)),
        # cap low enough to actually bind (a genuinely light-tailed control;
        # a high cap would almost never trigger and replay the Pareto rows).
        ("truncated-pareto", TruncatedParetoNoise(rho=rho, cap_factor=0.5)),
        ("exponential", ExponentialNoise(rho=rho)),
        ("gaussian", GaussianNoise(rho=rho)),
    ):
        configs = [
            (
                est.name,
                {"tuner": "pro", "noise": noise, "plan": SamplingPlan(k, est)},
            )
            for est in estimators
        ]
        table = _run_cells(
            configs, trials=trials, budget=budget, rng=rng,
            executor=executor, jobs=jobs, failure_policy=failure_policy,
            retries=retries, task_timeout=task_timeout,
        )
        table.meta.update({"noise": label, "rho": rho, "k": k})
        out[label] = table
    return out


def run_adaptive_k_study(
    *,
    trials: int = 30,
    budget: int = 150,
    rho_values: tuple[float, ...] = (0.0, 0.1, 0.3),
    rng: int | np.random.Generator | None = 19,
    executor: str = "serial",
    jobs: int | None = None,
    failure_policy: str = "raise",
    retries: int | None = None,
    task_timeout: float | None = None,
) -> dict[float, AblationTable]:
    """Adaptive-K controller vs fixed K ∈ {1, 3, 5}, across noise levels.

    A good adaptive controller should track the best fixed K for each ρ
    without knowing ρ — small K when quiet, larger K when noisy.
    """
    out: dict[float, AblationTable] = {}
    for rho in rho_values:
        noise: NoiseModel | None = ParetoNoise(rho=rho) if rho > 0 else None
        configs: list[tuple[str, dict]] = [
            (f"fixed K={k}", {"tuner": "pro", "noise": noise, "plan": SamplingPlan(k)})
            for k in (1, 3, 5)
        ]
        configs.append(
            (
                "adaptive",
                {
                    "tuner": "pro",
                    "noise": noise,
                    "plan": SamplingPlan(1),
                    "controller": lambda: AdaptiveSamplingController(
                        k_initial=1, k_max=6
                    ),
                },
            )
        )
        table = _run_cells(
            configs, trials=trials, budget=budget, rng=rng,
            executor=executor, jobs=jobs, failure_policy=failure_policy,
            retries=retries, task_timeout=task_timeout,
        )
        table.meta.update({"rho": rho})
        out[float(rho)] = table
    return out
