"""Parallel execution engine for paired-seed tuning sweeps.

The sweeps the paper's evaluation runs (tuner variant × noise level ×
sampling plan × dozens of trials) are embarrassingly parallel: every
(cell, trial) pair is an independent session fully determined by
``(factory, trial_seed)``.  This module supplies the pluggable execution
layer :func:`repro.experiments.runner.run_sweep` fans those pairs out on:

* :class:`SerialExecutor` — in-process, the historical behavior;
* :class:`ThreadExecutor` — a thread pool (useful when the evaluator
  releases the GIL or blocks on I/O, e.g. a live Harmony server);
* :class:`ProcessExecutor` — a process pool for CPU-bound simulation
  sweeps (task descriptors and factories must be picklable).

Design contract (what keeps parallel runs trustworthy):

* **paired seeding is preserved** — the master RNG draws the trial-seed
  vector once, up front, in the caller; a worker never touches the master
  stream and reconstructs its session purely from ``(factory, seed)``;
* **worker-persistent factories** — pool executors ship each distinct
  factory to the workers exactly once (a pool ``initializer`` installs
  them in a per-process registry); tasks then travel as lean
  ``(cell, trial, seed)`` descriptors carrying only a registry key, so a
  10 000-trial sweep pickles its evaluator state once per worker, not
  once per chunk.  Large database arrays additionally ride in POSIX
  shared memory (:mod:`repro._shm`) instead of inside the pickle;
* **ordered gathering** — workers may finish in any order, but
  :func:`execute_ordered` re-emits outcomes in task-submission order
  (cell-major, trial-minor), so ``collect`` hooks and downstream
  aggregation observe exactly the serial sequence;
* **chunked scheduling** — tasks ship to pools in contiguous chunks to
  amortize inter-process pickling, without affecting results;
* **per-task fault isolation** — a task that raises, times out, or dies
  with its worker becomes a :class:`TrialFailure` record instead of
  poisoning its chunk or aborting the sweep; the completed siblings of a
  failed task always survive;
* **deterministic recovery** — a retried or re-dispatched task carries
  its original seed (a retried trial is the *same* trial), and injected
  faults (:mod:`repro.faults`) are keyed by ``(cell, trial, attempt)``,
  so a faulted-then-recovered sweep is bit-identical to a clean serial
  run of the surviving attempts, on every executor.

Together these make serial and parallel sweeps bit-identical — the
equivalence tests in ``tests/experiments/test_parallel.py`` and the
fault-tolerance suite in ``tests/experiments/test_fault_tolerance.py``
are the contract.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, replace
from itertools import count
from typing import Callable, Iterable, Iterator, Sequence

from repro import _shm
from repro.faults.inject import FaultyEvaluator
from repro.faults.plan import FaultPlan, InjectedFault
from repro.harmony.metrics import SessionResult
from repro.harmony.session import TuningSession
from repro.obs import trace as obs_trace

__all__ = [
    "EXECUTOR_NAMES",
    "FAILURE_POLICIES",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "SweepTask",
    "ThreadExecutor",
    "TrialFailure",
    "TrialOutcome",
    "TrialTimeout",
    "chunk_tasks",
    "execute_ordered",
    "make_executor",
    "run_trial",
]

#: executor specs accepted by :func:`make_executor` (and the CLI)
EXECUTOR_NAMES = ("serial", "thread", "process")

#: what to do with a trial that still fails after recovery (see
#: :func:`execute_ordered`): abort the sweep, drop the trial but keep a
#: record, or retry it (with its original seed) before dropping
FAILURE_POLICIES = ("raise", "skip", "retry")


class TrialTimeout(RuntimeError):
    """A task exceeded its wall-clock allowance and was abandoned."""


@dataclass(frozen=True)
class SweepTask:
    """One (cell, trial) evaluation, fully self-describing.

    A task is the unit shipped to workers: the factory plus the trial seed
    reconstruct the session from scratch, so a worker needs no other state.
    For :class:`ProcessExecutor` the factory must be picklable (a
    module-level function or class instance — not a closure).
    """

    cell_index: int
    cell_name: str
    trial_index: int
    seed: int
    #: builds a fresh session; called ``factory(seed)``, or
    #: ``factory(seed, trial_index)`` when ``factory.trial_aware`` is true.
    #: Pool executors with worker-persistent state strip this to None and
    #: set ``factory_key`` instead, so the descriptor stays a few bytes.
    factory: Callable | None
    #: ship the full SessionResult back (needed by ``collect`` hooks);
    #: off by default to keep inter-process traffic small
    keep_result: bool = False
    #: retry generation: 0 for the first dispatch, incremented by the
    #: recovery loop; the seed never changes — a retried trial is the same
    #: trial, and fault plans key their schedule on this index
    attempt: int = 0
    #: per-task wall-clock allowance in seconds (None = unbounded); an
    #: over-budget task is abandoned and surfaces as a timeout failure
    timeout: float | None = None
    #: deterministic fault-injection schedule applied by the worker
    faults: FaultPlan | None = None
    #: registry key resolving the factory on the worker when ``factory``
    #: is None (see :data:`_WORKER_REGISTRY` / :func:`_worker_init`)
    factory_key: object | None = None
    #: observability shard descriptor (``{"dir": <shard directory>}``); the
    #: worker resolves it to a per-process tracer and flushes trial events
    #: as JSONL shards the sweep runner merges on gather.  None = no tracing.
    trace: dict | None = None
    #: parent wall clock at dispatch, for the queue-wait metric (volatile —
    #: never part of a canonical trace)
    dispatch_ts: float | None = None


@dataclass(frozen=True)
class TrialOutcome:
    """What one task produced: the scalars the aggregation needs, plus the
    full :class:`SessionResult` when the task asked for it."""

    cell_index: int
    cell_name: str
    trial_index: int
    seed: int
    ntt: float
    final_cost: float
    total_time: float
    converged: bool
    result: SessionResult | None = None


@dataclass(frozen=True)
class TrialFailure:
    """TrialOutcome-shaped record of a task that produced no result.

    Carries the same identity fields as :class:`TrialOutcome` so the
    aggregation can place it, plus what went wrong and on which attempt.
    The original exception rides along in-process (``exception``) for
    ``failure_policy="raise"`` re-raising; only the string fields cross
    process boundaries reliably and only they are serialized.
    """

    cell_index: int
    cell_name: str
    trial_index: int
    seed: int
    attempt: int
    #: ``"error"`` (the task raised), ``"timeout"`` (exceeded its
    #: allowance), or ``"worker-lost"`` (its pool worker died outright)
    kind: str
    error_type: str
    message: str
    exception: BaseException | None = None

    def to_dict(self) -> dict:
        """JSON-safe record for the :class:`SweepResult` failure ledger."""
        return {
            "cell_index": int(self.cell_index),
            "cell_name": self.cell_name,
            "trial_index": int(self.trial_index),
            "seed": int(self.seed),
            "attempt": int(self.attempt),
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
        }

    def _picklable(self) -> "TrialFailure":
        """Drop (or substitute) an exception object that cannot pickle."""
        if self.exception is None:
            return self
        try:
            pickle.dumps(self.exception)
            return self
        except Exception:
            return replace(
                self,
                exception=RuntimeError(f"{self.error_type}: {self.message}"),
            )


def _failure(task: SweepTask, exc: BaseException, kind: str) -> TrialFailure:
    return TrialFailure(
        cell_index=task.cell_index,
        cell_name=task.cell_name,
        trial_index=task.trial_index,
        seed=task.seed,
        attempt=task.attempt,
        kind=kind,
        error_type=type(exc).__name__,
        message=str(exc),
        exception=exc,
    )


# -- worker-persistent factory state ------------------------------------------

#: per-process registry of session factories installed by :func:`_worker_init`
#: (process pools) or directly by :class:`ThreadExecutor` (same process).
#: Lean :class:`SweepTask` descriptors reference entries by ``factory_key``.
_WORKER_REGISTRY: dict = {}

#: distinguishes concurrent/nested in-process registrations (thread pools,
#: retry rounds) so their registry keys never collide
_registry_ids = count()


def _worker_init(blob: bytes) -> None:
    """Process-pool initializer: unpickle the factory registry once.

    *blob* is pickled in the parent — under a shared-memory broadcast when
    the executor enables one, so database-backed factories materialize here
    as zero-copy attached views.  Runs once per worker process; every chunk
    the worker later receives resolves factories from this registry instead
    of re-unpickling them.
    """
    registry = pickle.loads(blob)
    _WORKER_REGISTRY.clear()
    _WORKER_REGISTRY.update(registry)


def _resolve_factory(task: SweepTask) -> Callable:
    """The task's factory, from the descriptor or the worker registry."""
    if task.factory is not None:
        return task.factory
    try:
        return _WORKER_REGISTRY[task.factory_key]
    except KeyError:
        raise RuntimeError(
            f"no worker factory registered under key {task.factory_key!r} "
            "(was the pool started with its initializer?)"
        ) from None


def run_trial(task: SweepTask) -> TrialOutcome:
    """Execute one task: rebuild the session from (factory, seed) and run it.

    Runs inside the worker (same process for serial/thread, a pool worker
    for process).  Validation mirrors the historical serial runner so bad
    factories fail identically under every executor.  When the task
    carries a :class:`~repro.faults.FaultPlan`, its scheduled fault for
    ``(cell, trial, attempt)`` is applied here: ``crash`` raises before
    the session is built, ``hang`` sleeps ``plan.hang_seconds`` (a
    straggler the timeout layer can abandon), and ``nan``/``slowdown``
    wrap the session's evaluator.  Raises on failure; fault capture is the
    executor's job.

    A traced task (``task.trace`` set) additionally records trial.start /
    trial.end events under its (cell, trial, attempt) identity and flushes
    them to the sweep's shard directory before returning.
    """
    if task.trace is None:
        return _run_trial_impl(task, None)
    tracer = obs_trace.worker_tracer(task.trace)
    with tracer.scope(
        cell=task.cell_index,
        trial=task.trial_index,
        attempt=task.attempt,
        src="worker",
    ), obs_trace.activated(tracer):
        t0 = time.time()
        tracer.emit(
            "trial.start",
            seed=task.seed,
            wait_s=(t0 - task.dispatch_ts) if task.dispatch_ts else None,
        )
        try:
            outcome = _run_trial_impl(task, tracer)
        except BaseException:
            # The failure event is the executor's job (it knows the kind);
            # flush so the events so far survive the raise.
            tracer.flush()
            raise
        tracer.emit(
            "trial.end",
            ntt=outcome.ntt,
            final_cost=outcome.final_cost,
            total_time=outcome.total_time,
            converged=outcome.converged,
            dur_s=time.time() - t0,
        )
        tracer.flush()
        return outcome


def _run_trial_impl(task: SweepTask, tracer: "obs_trace.Tracer | None") -> TrialOutcome:
    fault = None
    if task.faults is not None:
        fault = task.faults.fault_for(
            task.cell_index, task.trial_index, task.attempt
        )
        if fault is not None and tracer is not None:
            tracer.emit("fault.injected", fault=fault)
    if fault == "crash":
        raise InjectedFault(
            f"injected crash: cell {task.cell_index} trial {task.trial_index} "
            f"attempt {task.attempt}"
        )
    if fault == "hang":
        time.sleep(task.faults.hang_seconds)
    factory = _resolve_factory(task)
    if getattr(factory, "trial_aware", False):
        session = factory(task.seed, task.trial_index)
    else:
        session = factory(task.seed)
    if not isinstance(session, TuningSession):
        raise TypeError(
            f"cell {task.cell_name!r} factory must return a TuningSession, "
            f"got {type(session).__name__}"
        )
    if fault in ("nan", "slowdown"):
        session.evaluator = FaultyEvaluator(
            session.evaluator,
            mode="nan" if fault == "nan" else "slowdown",
            factor=task.faults.slowdown_factor,
        )
    if tracer is not None:
        session.tracer = tracer
    result = session.run()
    return TrialOutcome(
        cell_index=task.cell_index,
        cell_name=task.cell_name,
        trial_index=task.trial_index,
        seed=task.seed,
        ntt=result.normalized_total_time(),
        final_cost=result.best_true_cost,
        total_time=result.total_time(),
        converged=result.converged_at is not None,
        result=result if task.keep_result else None,
    )


def _emit_trial_fail(task: SweepTask, exc: BaseException, kind: str) -> None:
    """Record a worker-side failure event for a traced task (and flush)."""
    if task.trace is None:
        return
    tracer = obs_trace.worker_tracer(task.trace)
    tracer.emit(
        "trial.fail",
        cell=task.cell_index,
        trial=task.trial_index,
        attempt=task.attempt,
        src="worker",
        fail_kind=kind,
        error_type=type(exc).__name__,
        message=str(exc),
    )
    tracer.flush()


def _run_trial_with_timeout(task: SweepTask, timeout: float) -> TrialOutcome:
    """Run one task under a wall-clock watchdog.

    The trial runs in a daemon thread; if it has not finished within
    *timeout* seconds it is abandoned (the thread keeps running but its
    eventual result is discarded — it cannot race the re-dispatched copy)
    and :class:`TrialTimeout` is raised so the recovery loop can
    re-dispatch the task.
    """
    box: list[object] = []

    def target() -> None:
        try:
            box.append(run_trial(task))
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            box.append(exc)

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise TrialTimeout(
            f"cell {task.cell_index} trial {task.trial_index} attempt "
            f"{task.attempt} exceeded its {timeout:g}s allowance"
        )
    outcome = box[0]
    if isinstance(outcome, BaseException):
        raise outcome
    return outcome  # type: ignore[return-value]


def _guarded_trial(task: SweepTask) -> TrialOutcome | TrialFailure:
    """Run one task, capturing any failure as a :class:`TrialFailure`."""
    try:
        if task.timeout is not None:
            return _run_trial_with_timeout(task, task.timeout)
        return run_trial(task)
    except TrialTimeout as exc:
        _emit_trial_fail(task, exc, "timeout")
        return _failure(task, exc, kind="timeout")
    except Exception as exc:  # noqa: BLE001 - per-task isolation is the point
        _emit_trial_fail(task, exc, "error")
        return _failure(task, exc, kind="error")


def _run_chunk(tasks: Sequence[SweepTask]) -> list[TrialOutcome | TrialFailure]:
    """Worker entry point for pool executors: run one contiguous chunk.

    Outcomes are captured per task — a raising task yields its own
    :class:`TrialFailure` and its completed siblings survive untouched
    (the chunk is a shipping container, not a failure domain).
    """
    out: list[TrialOutcome | TrialFailure] = []
    for task in tasks:
        result = _guarded_trial(task)
        if isinstance(result, TrialFailure):
            result = result._picklable()
        out.append(result)
    return out


def chunk_tasks(n_tasks: int, jobs: int, chunksize: int | None = None) -> list[range]:
    """Split ``range(n_tasks)`` into contiguous chunks for pool submission.

    The default chunk size targets ~4 chunks per worker, keeping pickling
    overhead amortized while bounding how much work any one slow chunk
    holds; short sweeps (fewer than 4 tasks per worker) always chunk at
    size 1 so every worker draws work instead of idling behind a
    neighbour's chunk — with worker-persistent factories a task descriptor
    is a few bytes, so minimal chunks cost nothing.  Stragglers are not
    rebalanced at this layer: a task that exceeds its ``timeout`` is
    abandoned by the per-task watchdog and surfaces as a timeout
    :class:`TrialFailure`, which the recovery pass in
    :func:`execute_ordered` re-dispatches (with its original seed) as a
    fresh single-task submission.
    """
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if chunksize is None:
        chunksize = 1 if n_tasks < jobs * 4 else -(-n_tasks // (jobs * 4))
    elif chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    return [
        range(start, min(start + chunksize, n_tasks))
        for start in range(0, n_tasks, chunksize)
    ]


class Executor(ABC):
    """Runs sweep tasks, yielding ``(task_index, result)`` in any order.

    Implementations must evaluate every task exactly once via
    :func:`_guarded_trial` (or :func:`_run_chunk`), yielding a
    :class:`TrialOutcome` or a captured :class:`TrialFailure` per task —
    never raising for a task-level error.  Ordering and failure policy are
    the caller's problem — see :func:`execute_ordered`.
    """

    name: str = "executor"

    #: parent-side tracer installed by the sweep runner for the duration of
    #: one traced sweep; executors emit scheduling events (worker loss,
    #: shared-memory export) through it.  None = tracing off.
    tracer: "obs_trace.Tracer | None" = None

    @abstractmethod
    def map_tasks(
        self, tasks: Sequence[SweepTask]
    ) -> Iterator[tuple[int, TrialOutcome | TrialFailure]]:
        """Yield ``(index, outcome-or-failure)`` pairs, completion-ordered."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """In-process, in-order execution — the reference implementation."""

    name = "serial"

    def map_tasks(
        self, tasks: Sequence[SweepTask]
    ) -> Iterator[tuple[int, TrialOutcome | TrialFailure]]:
        for i, task in enumerate(tasks):
            yield i, _guarded_trial(task)


def _strip_factories(
    tasks: Sequence[SweepTask], make_key: Callable[[int], object]
) -> tuple[list[SweepTask], dict]:
    """Replace each task's factory with a registry key (one per distinct
    factory object); returns the lean tasks and the ``key -> factory`` map."""
    registry: dict = {}
    key_of: dict[int, object] = {}
    lean: list[SweepTask] = []
    for task in tasks:
        key = key_of.get(id(task.factory))
        if key is None:
            key = make_key(len(registry))
            key_of[id(task.factory)] = key
            registry[key] = task.factory
        lean.append(replace(task, factory=None, factory_key=key))
    return lean, registry


class _PoolExecutor(Executor):
    """Shared chunked-scheduling logic for thread/process pools.

    ``persistent=True`` (the default) ships each distinct factory to the
    workers once per ``map_tasks`` call instead of once per chunk; the
    tasks themselves then travel as lean keyed descriptors.  Results are
    identical either way — the flag exists for A/B measurement and for the
    executor-invariance suite to cover both paths.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunksize: int | None = None,
        persistent: bool = True,
    ):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = int(jobs)
        self.chunksize = chunksize
        self.persistent = bool(persistent)

    def _make_pool(self, n_workers: int, **pool_kwargs):
        raise NotImplementedError

    def _prepare(
        self, tasks: list[SweepTask]
    ) -> tuple[list[SweepTask], dict, Callable[[], None] | None]:
        """Hook: set up worker-persistent state for one map_tasks call.

        Returns ``(tasks_to_ship, pool_kwargs, cleanup)``; *cleanup* (may
        be None) runs after the pool has shut down.
        """
        return tasks, {}, None

    def map_tasks(
        self, tasks: Sequence[SweepTask]
    ) -> Iterator[tuple[int, TrialOutcome | TrialFailure]]:
        tasks = list(tasks)
        if not tasks:
            return
        if self.jobs == 1 or len(tasks) == 1:
            # A one-worker pool is pure overhead; degrade to in-process.
            yield from SerialExecutor().map_tasks(tasks)
            return
        chunks = chunk_tasks(len(tasks), self.jobs, self.chunksize)
        ship, pool_kwargs, cleanup = self._prepare(tasks)
        try:
            with self._make_pool(min(self.jobs, len(chunks)), **pool_kwargs) as pool:
                futures = {
                    pool.submit(_run_chunk, [ship[i] for i in chunk]): chunk
                    for chunk in chunks
                }
                for future in as_completed(futures):
                    chunk = futures[future]
                    try:
                        outcomes = future.result()
                    except BrokenExecutor as exc:
                        # A worker process died outright (segfault, OOM
                        # kill, os._exit).  The pool is unusable from here
                        # on, but the sweep is not: every task still in
                        # flight becomes a worker-lost failure the recovery
                        # pass can re-dispatch on a fresh pool.
                        outcomes = [
                            _failure(tasks[i], exc, kind="worker-lost")
                            for i in chunk
                        ]
                        if self.tracer is not None:
                            for i in chunk:
                                self.tracer.emit(
                                    "worker.lost",
                                    cell=tasks[i].cell_index,
                                    trial=tasks[i].trial_index,
                                    attempt=tasks[i].attempt,
                                    error_type=type(exc).__name__,
                                )
                        if cleanup is not None:
                            # The workers are gone, so the worker-persistent
                            # state — shared-memory segments above all — can
                            # and must be released now: a consumer that
                            # reacts to the failures by raising leaves this
                            # generator suspended in the exception's
                            # traceback, deferring the finally below (and
                            # the segments with it) indefinitely.
                            cleanup()
                            cleanup = None
                    yield from zip(chunk, outcomes)
        finally:
            # Shared-memory segments (and in-process registry entries) stay
            # alive until every worker has exited; the pool's context exit
            # above joins the workers first.
            if cleanup is not None:
                cleanup()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution.

    Sessions built from distinct seeds share no RNG state, so trials are
    logically independent; note that a *shared* evaluator object (e.g. one
    PerformanceDatabase reused across cells) sees concurrent calls — its
    diagnostic counters may interleave, but returned values are pure.

    Workers share the parent's memory, so the persistent path installs the
    factories straight into the in-process registry (no pickling, no
    shared-memory export) — one read-only factory object behind the same
    descriptor interface the process pool uses.
    """

    name = "thread"

    def _make_pool(self, n_workers: int, **pool_kwargs):
        return ThreadPoolExecutor(max_workers=n_workers, **pool_kwargs)

    def _prepare(
        self, tasks: list[SweepTask]
    ) -> tuple[list[SweepTask], dict, Callable[[], None] | None]:
        if not self.persistent:
            return tasks, {}, None
        token = next(_registry_ids)
        lean, registry = _strip_factories(tasks, lambda n: (token, n))
        _WORKER_REGISTRY.update(registry)

        def cleanup() -> None:
            for key in registry:
                _WORKER_REGISTRY.pop(key, None)

        return lean, {}, cleanup


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution for CPU-bound sweeps.

    Factories must be picklable (module-level callables or instances,
    never closures or lambdas).  By default they are pickled once per pool
    into a worker ``initializer`` blob — under an active shared-memory
    broadcast, so a :class:`~repro.apps.database.PerformanceDatabase`
    inside a factory travels as an attach-by-name descriptor and the
    workers map its arrays zero-copy.  ``shared_memory=False`` keeps the
    one-pickle-per-pool initializer but ships arrays inline;
    ``persistent=False`` restores the historical pickle-per-chunk path.
    """

    name = "process"

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunksize: int | None = None,
        persistent: bool = True,
        shared_memory: bool = True,
    ):
        super().__init__(jobs, chunksize=chunksize, persistent=persistent)
        self.shared_memory = bool(shared_memory)

    def _make_pool(self, n_workers: int, **pool_kwargs):
        return ProcessPoolExecutor(max_workers=n_workers, **pool_kwargs)

    def _prepare(
        self, tasks: list[SweepTask]
    ) -> tuple[list[SweepTask], dict, Callable[[], None] | None]:
        if not self.persistent:
            return tasks, {}, None
        lean, registry = _strip_factories(tasks, lambda n: f"cell-{n}")
        broadcast = _shm.ShmBroadcast() if self.shared_memory else None
        try:
            if broadcast is not None:
                # Pickle in the parent, explicitly, so the broadcast export
                # happens even under fork (where initargs are inherited,
                # not pickled at submission time).
                with _shm.broadcasting(broadcast):
                    blob = pickle.dumps(registry)
            else:
                blob = pickle.dumps(registry)
        except Exception:
            if broadcast is not None:
                broadcast.close()
            raise
        cleanup = broadcast.close if broadcast is not None else None
        if broadcast is not None and self.tracer is not None:
            self.tracer.emit(
                "shm.export",
                n_segments=broadcast.n_segments,
                total_bytes=broadcast.total_bytes,
                blob_bytes=len(blob),
            )
        pool_kwargs = {"initializer": _worker_init, "initargs": (blob,)}
        return lean, pool_kwargs, cleanup


def make_executor(
    spec: str | Executor, jobs: int | None = None
) -> Executor:
    """Resolve an executor spec (``"serial"|"thread"|"process"`` or an
    :class:`Executor` instance) plus a worker count into an executor."""
    if isinstance(spec, Executor):
        if jobs is not None:
            raise ValueError(
                "jobs cannot be combined with an Executor instance; "
                "configure the instance directly"
            )
        return spec
    if spec == "serial":
        if jobs not in (None, 1):
            raise ValueError(f"serial executor ignores workers, got jobs={jobs}")
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor(jobs)
    if spec == "process":
        return ProcessExecutor(jobs)
    raise ValueError(f"unknown executor {spec!r}; known: {EXECUTOR_NAMES}")


def _raise_failure(failure: TrialFailure) -> None:
    if failure.exception is not None:
        raise failure.exception
    raise RuntimeError(
        f"cell {failure.cell_name!r} trial {failure.trial_index} failed: "
        f"{failure.error_type}: {failure.message}"
    )


def execute_ordered(
    executor: Executor,
    tasks: Iterable[SweepTask],
    emit: Callable[[TrialOutcome], None] | None = None,
    *,
    failure_policy: str = "raise",
    retries: int | None = None,
) -> list[TrialOutcome | TrialFailure]:
    """Run *tasks* on *executor*; return per-task results in task order.

    ``emit`` (the ``collect`` plumbing) is called with each successful
    outcome in strict submission order — with no recovery in play a trial
    that finishes early is buffered until every earlier trial has landed;
    when retries are enabled, emission happens once every task's fate is
    final (a failed trial's slot might otherwise be filled out of order by
    its retry).  Hooks observe the exact serial sequence either way.

    Failure handling:

    * ``failure_policy="raise"`` (default) — the first failure aborts the
      sweep by re-raising the task's exception, the historical behavior;
    * ``"skip"`` — failed trials stay in the result list as
      :class:`TrialFailure` records for the caller to account;
    * ``"retry"`` — failed (crashed, timed-out, or worker-lost) tasks are
      re-dispatched with their original seed and an incremented
      ``attempt``, up to *retries* extra rounds (default 2); tasks that
      still fail are then treated as skipped.  Each retry round runs on a
      fresh pool, which also recovers from a broken process pool.

    *retries* may be combined with any policy (``raise`` then raises only
    if a task exhausts its retries); it defaults to 2 under ``"retry"``
    and 0 otherwise.
    """
    if failure_policy not in FAILURE_POLICIES:
        raise ValueError(
            f"unknown failure_policy {failure_policy!r}; known: {FAILURE_POLICIES}"
        )
    if retries is None:
        retries = 2 if failure_policy == "retry" else 0
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    tasks = list(tasks)
    tracer = getattr(executor, "tracer", None)
    #: the attempt index that produced each task's final result (retries
    #: replace results in place, so the outcome itself doesn't carry it)
    final_attempt = [0] * len(tasks)
    results: list[TrialOutcome | TrialFailure | None] = [None] * len(tasks)
    stream = emit is not None and retries == 0
    next_emit = 0
    for i, result in executor.map_tasks(tasks):
        if results[i] is not None:
            raise RuntimeError(f"executor produced task {i} twice")
        if (
            isinstance(result, TrialFailure)
            and failure_policy == "raise"
            and retries == 0
        ):
            _raise_failure(result)
        results[i] = result
        if stream:
            while next_emit < len(tasks) and results[next_emit] is not None:
                ready = results[next_emit]
                if isinstance(ready, TrialOutcome):
                    emit(ready)  # type: ignore[misc]
                next_emit += 1
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        raise RuntimeError(f"executor dropped tasks {missing[:5]}")
    # Recovery: re-dispatch failed tasks (same seed, next attempt) round by
    # round; each round uses a fresh map_tasks call, hence a fresh pool.
    for attempt in range(1, retries + 1):
        pending = [
            i for i, r in enumerate(results) if isinstance(r, TrialFailure)
        ]
        if not pending:
            break
        redispatch = [replace(tasks[i], attempt=attempt) for i in pending]
        if tracer is not None:
            for task in redispatch:
                tracer.emit(
                    "retry.dispatch",
                    cell=task.cell_index,
                    trial=task.trial_index,
                    attempt=task.attempt,
                )
        round_results: list[TrialOutcome | TrialFailure | None] = [None] * len(
            redispatch
        )
        for j, result in executor.map_tasks(redispatch):
            if round_results[j] is not None:
                raise RuntimeError(f"executor produced retried task {j} twice")
            round_results[j] = result
        for j, i in enumerate(pending):
            if round_results[j] is None:
                raise RuntimeError(f"executor dropped retried task {i}")
            results[i] = round_results[j]
            final_attempt[i] = attempt
    if tracer is not None:
        # Parent-authoritative verdicts, one per task, emitted after every
        # recovery round has run.  Replay (repro.obs.replay) trusts these —
        # unlike worker shard events, they cannot race a timed-out trial's
        # abandoned watchdog thread.
        for i, result in enumerate(results):
            task = tasks[i]
            if isinstance(result, TrialOutcome):
                tracer.emit(
                    "trial.settled",
                    cell=task.cell_index,
                    trial=task.trial_index,
                    attempt=final_attempt[i],
                    seed=task.seed,
                    status="ok",
                    ntt=result.ntt,
                    final_cost=result.final_cost,
                    total_time=result.total_time,
                    converged=bool(result.converged),
                )
            elif isinstance(result, TrialFailure):
                tracer.emit(
                    "trial.settled",
                    cell=task.cell_index,
                    trial=task.trial_index,
                    attempt=result.attempt,
                    seed=task.seed,
                    status="failed",
                    fail_kind=result.kind,
                    error_type=result.error_type,
                )
    failures = [r for r in results if isinstance(r, TrialFailure)]
    if failures and failure_policy == "raise":
        _raise_failure(failures[0])
    if emit is not None and not stream:
        for result in results:
            if isinstance(result, TrialOutcome):
                emit(result)
    return results  # type: ignore[return-value]
