"""Parallel execution engine for paired-seed tuning sweeps.

The sweeps the paper's evaluation runs (tuner variant × noise level ×
sampling plan × dozens of trials) are embarrassingly parallel: every
(cell, trial) pair is an independent session fully determined by
``(factory, trial_seed)``.  This module supplies the pluggable execution
layer :func:`repro.experiments.runner.run_sweep` fans those pairs out on:

* :class:`SerialExecutor` — in-process, the historical behavior;
* :class:`ThreadExecutor` — a thread pool (useful when the evaluator
  releases the GIL or blocks on I/O, e.g. a live Harmony server);
* :class:`ProcessExecutor` — a process pool for CPU-bound simulation
  sweeps (task descriptors and factories must be picklable).

Design contract (what keeps parallel runs trustworthy):

* **paired seeding is preserved** — the master RNG draws the trial-seed
  vector once, up front, in the caller; a worker never touches the master
  stream and reconstructs its session purely from ``(factory, seed)``;
* **ordered gathering** — workers may finish in any order, but
  :func:`execute_ordered` re-emits outcomes in task-submission order
  (cell-major, trial-minor), so ``collect`` hooks and downstream
  aggregation observe exactly the serial sequence;
* **chunked scheduling** — tasks ship to pools in contiguous chunks to
  amortize inter-process pickling, without affecting results.

Together these make serial and parallel sweeps bit-identical — the
equivalence test in ``tests/experiments/test_parallel.py`` is the contract.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.harmony.metrics import SessionResult
from repro.harmony.session import TuningSession

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "SweepTask",
    "ThreadExecutor",
    "TrialOutcome",
    "chunk_tasks",
    "execute_ordered",
    "make_executor",
    "run_trial",
]

#: executor specs accepted by :func:`make_executor` (and the CLI)
EXECUTOR_NAMES = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepTask:
    """One (cell, trial) evaluation, fully self-describing.

    A task is the unit shipped to workers: the factory plus the trial seed
    reconstruct the session from scratch, so a worker needs no other state.
    For :class:`ProcessExecutor` the factory must be picklable (a
    module-level function or class instance — not a closure).
    """

    cell_index: int
    cell_name: str
    trial_index: int
    seed: int
    #: builds a fresh session; called ``factory(seed)``, or
    #: ``factory(seed, trial_index)`` when ``factory.trial_aware`` is true
    factory: Callable
    #: ship the full SessionResult back (needed by ``collect`` hooks);
    #: off by default to keep inter-process traffic small
    keep_result: bool = False


@dataclass(frozen=True)
class TrialOutcome:
    """What one task produced: the scalars the aggregation needs, plus the
    full :class:`SessionResult` when the task asked for it."""

    cell_index: int
    cell_name: str
    trial_index: int
    seed: int
    ntt: float
    final_cost: float
    total_time: float
    converged: bool
    result: SessionResult | None = None


def run_trial(task: SweepTask) -> TrialOutcome:
    """Execute one task: rebuild the session from (factory, seed) and run it.

    Runs inside the worker (same process for serial/thread, a pool worker
    for process).  Validation mirrors the historical serial runner so bad
    factories fail identically under every executor.
    """
    if getattr(task.factory, "trial_aware", False):
        session = task.factory(task.seed, task.trial_index)
    else:
        session = task.factory(task.seed)
    if not isinstance(session, TuningSession):
        raise TypeError(
            f"cell {task.cell_name!r} factory must return a TuningSession, "
            f"got {type(session).__name__}"
        )
    result = session.run()
    return TrialOutcome(
        cell_index=task.cell_index,
        cell_name=task.cell_name,
        trial_index=task.trial_index,
        seed=task.seed,
        ntt=result.normalized_total_time(),
        final_cost=result.best_true_cost,
        total_time=result.total_time(),
        converged=result.converged_at is not None,
        result=result if task.keep_result else None,
    )


def _run_chunk(tasks: Sequence[SweepTask]) -> list[TrialOutcome]:
    """Worker entry point for pool executors: run one contiguous chunk."""
    return [run_trial(task) for task in tasks]


def chunk_tasks(n_tasks: int, jobs: int, chunksize: int | None = None) -> list[range]:
    """Split ``range(n_tasks)`` into contiguous chunks for pool submission.

    The default chunk size targets ~4 chunks per worker so stragglers can
    be rebalanced while pickling overhead stays amortized.
    """
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if chunksize is None:
        chunksize = max(1, -(-n_tasks // (jobs * 4)))
    elif chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    return [
        range(start, min(start + chunksize, n_tasks))
        for start in range(0, n_tasks, chunksize)
    ]


class Executor(ABC):
    """Runs sweep tasks, yielding ``(task_index, outcome)`` in any order.

    Implementations must evaluate every task exactly once via
    :func:`run_trial` (or :func:`_run_chunk`); ordering is the caller's
    problem — see :func:`execute_ordered`.
    """

    name: str = "executor"

    @abstractmethod
    def map_tasks(
        self, tasks: Sequence[SweepTask]
    ) -> Iterator[tuple[int, TrialOutcome]]:
        """Yield ``(index, outcome)`` pairs, completion-ordered."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """In-process, in-order execution — the reference implementation."""

    name = "serial"

    def map_tasks(
        self, tasks: Sequence[SweepTask]
    ) -> Iterator[tuple[int, TrialOutcome]]:
        for i, task in enumerate(tasks):
            yield i, run_trial(task)


class _PoolExecutor(Executor):
    """Shared chunked-scheduling logic for thread/process pools."""

    def __init__(self, jobs: int | None = None, *, chunksize: int | None = None):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = int(jobs)
        self.chunksize = chunksize

    def _make_pool(self, n_workers: int):
        raise NotImplementedError

    def map_tasks(
        self, tasks: Sequence[SweepTask]
    ) -> Iterator[tuple[int, TrialOutcome]]:
        tasks = list(tasks)
        if not tasks:
            return
        if self.jobs == 1 or len(tasks) == 1:
            # A one-worker pool is pure overhead; degrade to in-process.
            yield from SerialExecutor().map_tasks(tasks)
            return
        chunks = chunk_tasks(len(tasks), self.jobs, self.chunksize)
        with self._make_pool(min(self.jobs, len(chunks))) as pool:
            futures = {
                pool.submit(_run_chunk, [tasks[i] for i in chunk]): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                outcomes = future.result()
                yield from zip(chunk, outcomes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution.

    Sessions built from distinct seeds share no RNG state, so trials are
    logically independent; note that a *shared* evaluator object (e.g. one
    PerformanceDatabase reused across cells) sees concurrent calls — its
    diagnostic counters may interleave, but returned values are pure.
    """

    name = "thread"

    def _make_pool(self, n_workers: int):
        return ThreadPoolExecutor(max_workers=n_workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution for CPU-bound sweeps.

    Tasks (factory included) are pickled per chunk; factories must be
    module-level callables or instances, never closures or lambdas.
    """

    name = "process"

    def _make_pool(self, n_workers: int):
        return ProcessPoolExecutor(max_workers=n_workers)


def make_executor(
    spec: str | Executor, jobs: int | None = None
) -> Executor:
    """Resolve an executor spec (``"serial"|"thread"|"process"`` or an
    :class:`Executor` instance) plus a worker count into an executor."""
    if isinstance(spec, Executor):
        if jobs is not None:
            raise ValueError(
                "jobs cannot be combined with an Executor instance; "
                "configure the instance directly"
            )
        return spec
    if spec == "serial":
        if jobs not in (None, 1):
            raise ValueError(f"serial executor ignores workers, got jobs={jobs}")
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor(jobs)
    if spec == "process":
        return ProcessExecutor(jobs)
    raise ValueError(f"unknown executor {spec!r}; known: {EXECUTOR_NAMES}")


def execute_ordered(
    executor: Executor,
    tasks: Iterable[SweepTask],
    emit: Callable[[TrialOutcome], None] | None = None,
) -> list[TrialOutcome]:
    """Run *tasks* on *executor*; return outcomes in task order.

    ``emit`` (the ``collect`` plumbing) is called with each outcome in
    strict submission order as soon as its prefix is complete — a trial
    that finishes early is buffered until every earlier trial has landed,
    so hooks observe the exact serial sequence regardless of executor.
    """
    tasks = list(tasks)
    outcomes: list[TrialOutcome | None] = [None] * len(tasks)
    next_emit = 0
    for i, outcome in executor.map_tasks(tasks):
        if outcomes[i] is not None:
            raise RuntimeError(f"executor produced task {i} twice")
        outcomes[i] = outcome
        if emit is not None:
            while next_emit < len(tasks) and outcomes[next_emit] is not None:
                emit(outcomes[next_emit])  # type: ignore[arg-type]
                next_emit += 1
    missing = [i for i, o in enumerate(outcomes) if o is None]
    if missing:
        raise RuntimeError(f"executor dropped tasks {missing[:5]}")
    return outcomes  # type: ignore[return-value]
