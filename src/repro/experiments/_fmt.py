"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render rows as an aligned monospace table (header + rule + rows)."""

    def cell(x: object) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(name: str, values: Sequence[float], *, per_line: int = 10) -> str:
    """Render a numeric series compactly over several lines."""
    chunks = []
    vals = [f"{v:.4g}" for v in values]
    for i in range(0, len(vals), per_line):
        chunks.append(" ".join(vals[i : i + per_line]))
    body = "\n  ".join(chunks)
    return f"{name} (n={len(vals)}):\n  {body}"
