"""Synthetic optimization problems on discrete lattices.

Each factory returns a :class:`SyntheticProblem` bundling the parameter
space, the objective, and the known global optimum — the ground truth the
unit and property tests check the tuners against.  All objectives are
shifted to be strictly positive (they are *times*), since the noise models
scale with f.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.space import FloatParameter, IntParameter, ParameterSpace

__all__ = [
    "SyntheticProblem",
    "quadratic_problem",
    "rosenbrock_problem",
    "rastrigin_problem",
    "plateau_problem",
]


@dataclass(frozen=True)
class SyntheticProblem:
    """A test problem: space + objective + known optimum."""

    name: str
    space: ParameterSpace
    objective: Callable[[np.ndarray], float]
    optimum_point: np.ndarray
    optimum_value: float
    #: optional vectorized objective over an (m, N) array; must be bitwise
    #: identical to calling ``objective`` row by row
    batch_objective: Callable[[np.ndarray], np.ndarray] | None = None

    def __call__(self, point: Sequence[float]) -> float:
        return float(self.objective(np.asarray(point, dtype=float)))

    def evaluate_batch(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Vectorized evaluation over an (m, N) batch of points."""
        arr = np.asarray(points, dtype=float)
        if self.batch_objective is not None:
            return np.asarray(self.batch_objective(arr), dtype=float)
        return np.array([self(row) for row in arr], dtype=float)


def quadratic_problem(
    n: int = 3,
    *,
    lower: int = -20,
    upper: int = 20,
    offset: float = 1.0,
) -> SyntheticProblem:
    """Separable integer quadratic: f(x) = offset + Σ (x_i - t_i)², t_i = i+1.

    Convex and unimodal — the smoke-test problem every tuner must solve.
    """
    if n < 1:
        raise ValueError(f"dimension must be >= 1, got {n}")
    target = np.arange(1, n + 1, dtype=float)
    if np.any(target > upper) or np.any(target < lower):
        raise ValueError("target optimum falls outside the declared bounds")
    space = ParameterSpace(
        [IntParameter(f"x{i}", lower, upper) for i in range(n)]
    )

    def objective(x: np.ndarray) -> float:
        return float(offset + np.sum((x - target) ** 2))

    def batch_objective(x: np.ndarray) -> np.ndarray:
        return offset + np.sum((x - target) ** 2, axis=1)

    return SyntheticProblem(
        "quadratic", space, objective, target, float(offset),
        batch_objective=batch_objective,
    )


def rosenbrock_problem(*, grid_step: float = 0.05) -> SyntheticProblem:
    """The 2-D Rosenbrock valley on a fine float grid (continuous params).

    Hard for axis-aligned methods: progress requires following the curved
    valley — a stress test for the rank-ordering geometry.
    """
    space = ParameterSpace(
        [
            FloatParameter("x", -2.0, 2.0, probe_step=grid_step),
            FloatParameter("y", -1.0, 3.0, probe_step=grid_step),
        ]
    )

    def objective(p: np.ndarray) -> float:
        x, y = float(p[0]), float(p[1])
        return 1.0 + (1.0 - x) ** 2 + 100.0 * (y - x * x) ** 2

    return SyntheticProblem(
        "rosenbrock", space, objective, np.array([1.0, 1.0]), 1.0
    )


def rastrigin_problem(n: int = 2, *, lower: int = -8, upper: int = 8) -> SyntheticProblem:
    """Integer-restricted Rastrigin: massively multimodal.

    On the integer lattice the cosine term is constant (cos(2πk) = 1), so we
    use a half-period variant that keeps genuine lattice-level multimodality:
    f(x) = offset + Σ [x_i² + A(1 - cos(π x_i))], minimized at 0.
    """
    if n < 1:
        raise ValueError(f"dimension must be >= 1, got {n}")
    a = 10.0
    space = ParameterSpace([IntParameter(f"x{i}", lower, upper) for i in range(n)])

    def objective(x: np.ndarray) -> float:
        return float(1.0 + np.sum(x**2 + a * (1.0 - np.cos(np.pi * x))))

    return SyntheticProblem(
        "rastrigin", space, objective, np.zeros(n), 1.0
    )


def plateau_problem(n: int = 2, *, width: int = 4) -> SyntheticProblem:
    """Staircase objective: f depends on ⌊x_i / width⌋ only.

    Large flat plateaus defeat gradient reasoning entirely and exercise the
    tuners' behaviour under ties (regions of exactly equal estimates).
    """
    if n < 1 or width < 1:
        raise ValueError("need n >= 1 and width >= 1")
    space = ParameterSpace([IntParameter(f"x{i}", -16, 16) for i in range(n)])

    def objective(x: np.ndarray) -> float:
        return float(1.0 + np.sum(np.floor(np.abs(x) / width) ** 2))

    return SyntheticProblem(
        "plateau", space, objective, np.zeros(n), 1.0
    )
