"""A synthetic performance surrogate for the GS2 gyrokinetics code.

The paper tunes three GS2 parameters — ``ntheta`` (grid points per 2π
segment of field line), ``negrid`` (energy grid size), and ``nodes`` —
against a database of measured per-timestep runtimes, and shows (Fig. 8)
that the resulting optimization surface is non-smooth with multiple local
minima.  We cannot run GS2, so this module builds a *surrogate*: a
deterministic analytic cost model with the structural features a spectral
SPMD code actually exhibits, each of which contributes ruggedness:

* **compute** — work ∝ ntheta · negrid², divided across nodes;
* **load imbalance** — grid cells are distributed in whole chunks, so the
  per-node work is ``ceil(ntheta / nodes)``: a sawtooth in both ntheta and
  nodes (the dominant source of local minima);
* **solver robustness** — the implicit (collision) solve needs more sweeps
  per time step on coarse grids, penalizing very small ntheta/negrid, which
  moves the optimum into the interior of the range (grid sizes trade off,
  they are not monotonically cheaper);
* **communication** — a per-iteration collective whose cost grows with the
  node count and with negrid (so more nodes is *not* monotonically better);
* **cache alignment** — a penalty when the inner-loop extent is misaligned
  with the vector/cache width, a second (finer) sawtooth;
* **fixed startup** per iteration.

The absolute scale is set so that the noise-free per-iteration time lands in
the paper's Fig. 3 ballpark (~1–5 s).  The surrogate is pure and
deterministic; stochastic variability is layered on top by the noise models
or the cluster simulator, never in here.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.space import IntParameter, ParameterSpace

__all__ = ["GS2Surrogate"]


class GS2Surrogate:
    """Deterministic per-iteration cost model f(ntheta, negrid, nodes)."""

    #: default parameter ranges (paper-plausible GS2 settings)
    NTHETA_RANGE = (16, 128, 4)   # lower, upper, step
    NEGRID_RANGE = (8, 64, 2)
    NODES_RANGE = (1, 64, 1)

    def __init__(
        self,
        *,
        compute_scale: float = 2.5e-4,
        comm_scale: float = 2.5e-3,
        comm_exponent: float = 1.05,
        stiffness_scale: float = 0.8,
        cache_penalty: float = 0.35,
        startup: float = 0.05,
        cache_width: int = 16,
        negrid_ref: float = 28.0,
        ntheta_ref: float = 56.0,
    ) -> None:
        if compute_scale <= 0 or comm_scale < 0 or startup < 0:
            raise ValueError("scales must be positive (comm/startup non-negative)")
        if not (0.0 <= cache_penalty < 10.0):
            raise ValueError(f"cache_penalty out of range: {cache_penalty}")
        if cache_width < 2:
            raise ValueError(f"cache_width must be >= 2, got {cache_width}")
        if negrid_ref <= 0 or ntheta_ref <= 0:
            raise ValueError("solver reference grid sizes must be positive")
        if comm_exponent <= 0 or stiffness_scale < 0:
            raise ValueError("comm_exponent must be positive, stiffness non-negative")
        self.compute_scale = float(compute_scale)
        self.comm_scale = float(comm_scale)
        self.comm_exponent = float(comm_exponent)
        self.stiffness_scale = float(stiffness_scale)
        self.cache_penalty = float(cache_penalty)
        self.startup = float(startup)
        self.cache_width = int(cache_width)
        self.negrid_ref = float(negrid_ref)
        self.ntheta_ref = float(ntheta_ref)

    # -- the parameter space ----------------------------------------------------

    @classmethod
    def space(cls) -> ParameterSpace:
        """The 3-parameter tuning space used throughout the evaluation."""
        return ParameterSpace(
            [
                IntParameter("ntheta", *cls.NTHETA_RANGE[:2], step=cls.NTHETA_RANGE[2]),
                IntParameter("negrid", *cls.NEGRID_RANGE[:2], step=cls.NEGRID_RANGE[2]),
                IntParameter("nodes", *cls.NODES_RANGE[:2], step=cls.NODES_RANGE[2]),
            ]
        )

    # -- the cost model ------------------------------------------------------------

    def __call__(self, point: Sequence[float]) -> float:
        """Noise-free per-iteration time (seconds) at [ntheta, negrid, nodes]."""
        pt = np.asarray(point, dtype=float)
        if pt.shape != (3,):
            raise ValueError(f"expected [ntheta, negrid, nodes], got shape {pt.shape}")
        ntheta, negrid, nodes = float(pt[0]), float(pt[1]), float(pt[2])
        if ntheta <= 0 or negrid <= 0 or nodes < 1:
            raise ValueError(f"invalid GS2 configuration {pt!r}")
        # Whole-chunk domain decomposition: per-node share of the theta grid.
        chunks = math.ceil(ntheta / nodes)
        # Velocity-space work per theta point: the quadrature cost ng² plus a
        # collision-solve term that blows up on coarse energy grids (interior
        # optimum near 0.79 * negrid_ref).
        velocity_work = negrid * negrid + self.negrid_ref**3 / negrid
        compute = self.compute_scale * chunks * velocity_work
        # Cache/vector alignment of the inner (energy) loop extent.
        misalignment = (negrid % self.cache_width) / self.cache_width
        compute *= 1.0 + self.cache_penalty * misalignment
        # Field-solve stiffness: a coarse parallel (theta) grid needs more
        # implicit sweeps per time step, a cost independent of decomposition.
        stiff = self.stiffness_scale * (self.ntheta_ref / ntheta) ** 2
        # Collective exchange once per iteration: latency grows with the node
        # count, payload with the energy grid.
        comm = (
            self.comm_scale * (nodes - 1.0) ** self.comm_exponent * negrid**0.5
            if nodes > 1
            else 0.0
        )
        return compute + stiff + comm + self.startup

    def batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized evaluation of an (M, 3) array of configurations.

        Mirrors :meth:`__call__` term by term with elementwise array
        operations, so results are bitwise identical to the scalar loop.
        """
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"expected an (M, 3) array, got shape {arr.shape}")
        ntheta, negrid, nodes = arr[:, 0], arr[:, 1], arr[:, 2]
        bad = (ntheta <= 0) | (negrid <= 0) | (nodes < 1) | ~np.isfinite(arr).all(axis=1)
        if np.any(bad):
            pt = arr[int(np.argmax(bad))]
            raise ValueError(f"invalid GS2 configuration {pt!r}")
        chunks = np.ceil(ntheta / nodes)
        velocity_work = negrid * negrid + self.negrid_ref**3 / negrid
        compute = self.compute_scale * chunks * velocity_work
        misalignment = (negrid % self.cache_width) / self.cache_width
        compute *= 1.0 + self.cache_penalty * misalignment
        # NumPy's vectorized pow rounds differently from libm's (and its
        # array ** 2 lowers to x*x); route the (few, small) pow bases
        # through the scalar pow so batch results match __call__ to the
        # last bit.
        stiff = self.stiffness_scale * np.array(
            [x**2 for x in (self.ntheta_ref / ntheta).tolist()], dtype=float
        )
        powed = np.array(
            [x ** self.comm_exponent for x in (nodes - 1.0).tolist()], dtype=float
        )
        root = np.array([x**0.5 for x in negrid.tolist()], dtype=float)
        comm = np.where(nodes > 1, self.comm_scale * powed * root, 0.0)
        return compute + stiff + comm + self.startup

    # -- ground truth for tests and benches --------------------------------------------

    @lru_cache(maxsize=None)
    def _optimum_cached(self) -> tuple[tuple[float, float, float], float]:
        space = self.space()
        best_pt, best_val = None, math.inf
        for pt in space.grid():
            v = self(pt)
            if v < best_val:
                best_val = v
                best_pt = tuple(float(x) for x in pt)
        assert best_pt is not None
        return best_pt, best_val

    def true_optimum(self) -> tuple[np.ndarray, float]:
        """Brute-force global optimum over the full lattice (cached)."""
        pt, val = self._optimum_cached()
        return np.asarray(pt, dtype=float), val

    def count_local_minima(self, *, fixed: dict[str, float] | None = None) -> int:
        """Number of strict local minima on the (optionally sliced) lattice.

        A point is a local minimum when no axial lattice neighbour has a
        strictly smaller cost.  ``fixed`` pins parameters by name (e.g.
        ``{"nodes": 32}``) to count minima on a 2-D slice, as in Fig. 8.
        """
        space = self.space()
        fixed = dict(fixed or {})
        for name in fixed:
            if name not in space.names:
                raise ValueError(f"unknown parameter {name!r}")
        count = 0
        for pt in space.grid():
            d = space.as_dict(pt)
            if any(d[k] != v for k, v in fixed.items()):
                continue
            v = self(pt)
            is_min = True
            for nb in space.probe_points(pt):
                nd = space.as_dict(nb)
                if any(nd[k] != fixed[k] for k in fixed):
                    continue  # neighbour leaves the slice
                if self(nb) < v:
                    is_min = False
                    break
            if is_min:
                count += 1
        return count
