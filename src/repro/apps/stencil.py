"""A second application surrogate: a tiled, temporally-blocked stencil.

The paper's introduction motivates online tuning with libraries whose best
parameters depend on input, architecture and co-running load.  The GS2
surrogate covers the paper's own evaluation subject; this module adds an
independent workload with a *different* structure — a 2-D stencil sweep
with cache-tiling and temporal blocking, the canonical autotuning kernel —
so examples and tests can demonstrate that nothing in the tuner is
GS2-specific.

Tunables and the mechanisms that make the surface rugged:

* ``tile_x, tile_y`` — cache tiles: too small pays loop/halo overhead per
  tile, too large spills the working set out of cache (a hard cliff);
* ``threads`` — tiles are distributed in whole chunks: ``ceil(tiles /
  threads)`` gives the load-imbalance sawtooth, and a per-sweep
  synchronization cost grows with the thread count;
* ``halo`` — temporal blocking depth: one sweep advances ``halo`` time
  steps at the price of redundant ghost-zone compute that grows with the
  depth — a classic interior trade-off.

Cost model units are seconds per application time step, same as GS2.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.space import IntParameter, ParameterSpace

__all__ = ["StencilSurrogate"]


class StencilSurrogate:
    """Seconds-per-timestep model f(tile_x, tile_y, threads, halo)."""

    TILE_RANGE = (8, 256, 8)
    THREADS_RANGE = (1, 32, 1)
    HALO_RANGE = (1, 4, 1)

    def __init__(
        self,
        *,
        grid: int = 4096,
        flop_time: float = 2.0e-10,
        cache_cells: float = 20_000.0,
        spill_penalty: float = 1.8,
        plane_pressure: float = 0.5,
        tile_overhead: float = 4.0e-6,
        sync_cost: float = 2.0e-3,
        bytes_per_cell: int = 8,
    ) -> None:
        if grid < 64:
            raise ValueError(f"grid must be >= 64 cells per side, got {grid}")
        if flop_time <= 0 or tile_overhead < 0 or sync_cost < 0:
            raise ValueError("cost coefficients must be positive/non-negative")
        if cache_cells <= 0 or spill_penalty < 1.0:
            raise ValueError("cache model parameters out of range")
        self.grid = int(grid)
        self.flop_time = float(flop_time)
        self.cache_cells = float(cache_cells)
        self.spill_penalty = float(spill_penalty)
        if plane_pressure < 0:
            raise ValueError(f"plane_pressure must be >= 0, got {plane_pressure}")
        self.plane_pressure = float(plane_pressure)
        self.tile_overhead = float(tile_overhead)
        self.sync_cost = float(sync_cost)
        self.bytes_per_cell = int(bytes_per_cell)

    @classmethod
    def space(cls) -> ParameterSpace:
        """The 4-parameter tuning space."""
        return ParameterSpace(
            [
                IntParameter("tile_x", *cls.TILE_RANGE[:2], step=cls.TILE_RANGE[2]),
                IntParameter("tile_y", *cls.TILE_RANGE[:2], step=cls.TILE_RANGE[2]),
                IntParameter("threads", *cls.THREADS_RANGE[:2]),
                IntParameter("halo", *cls.HALO_RANGE[:2]),
            ]
        )

    def __call__(self, point: Sequence[float]) -> float:
        """Noise-free seconds per application time step."""
        pt = np.asarray(point, dtype=float)
        if pt.shape != (4,):
            raise ValueError(
                f"expected [tile_x, tile_y, threads, halo], got shape {pt.shape}"
            )
        tx, ty, threads, halo = (float(v) for v in pt)
        if tx < 1 or ty < 1 or threads < 1 or halo < 1:
            raise ValueError(f"invalid stencil configuration {pt!r}")
        n_tiles = math.ceil(self.grid / tx) * math.ceil(self.grid / ty)
        # Temporal blocking: each sweep advances `halo` steps but computes a
        # ghost zone that grows with the depth.
        ghost_x = tx + 2.0 * halo
        ghost_y = ty + 2.0 * halo
        cells_per_tile = ghost_x * ghost_y * halo  # halo sub-sweeps per sweep
        # Deeper temporal blocking keeps more time planes live in cache.
        working_set = ghost_x * ghost_y * (1.0 + self.plane_pressure * (halo - 1.0))
        spill = (
            (working_set / self.cache_cells) ** self.spill_penalty
            if working_set > self.cache_cells
            else 1.0
        )
        per_tile = self.flop_time * cells_per_tile * spill + self.tile_overhead
        chunks = math.ceil(n_tiles / threads)
        sweep = chunks * per_tile + self.sync_cost * math.sqrt(threads)
        # Per *time step*: one sweep advances `halo` steps.
        return sweep / halo

    def batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized evaluation of an (M, 4) array of configurations."""
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 4:
            raise ValueError(f"expected an (M, 4) array, got shape {arr.shape}")
        return np.array([self(row) for row in arr], dtype=float)

    @lru_cache(maxsize=None)
    def _optimum_cached(self) -> tuple[tuple[float, ...], float]:
        space = self.space()
        best_pt, best_val = None, math.inf
        for pt in space.grid():
            v = self(pt)
            if v < best_val:
                best_val = v
                best_pt = tuple(float(x) for x in pt)
        assert best_pt is not None
        return best_pt, best_val

    def true_optimum(self) -> tuple[np.ndarray, float]:
        """Brute-force global optimum over the lattice (cached; ~128k points)."""
        pt, val = self._optimum_cached()
        return np.asarray(pt, dtype=float), val
