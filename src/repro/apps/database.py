"""A performance database with weighted nearest-neighbour interpolation.

The paper's controlled study (§6) does not run GS2 live: it evaluates the
optimizer against "a data base that contains the performance of the GS2
application for different parameter values", and — because the database does
not contain every combination — estimates missing points with a "weighted
average of its closest neighbors performance values".  This module
implements that database:

* entries map exact configurations to measured (or surrogate) costs;
* exact hits return the stored value;
* misses return an inverse-distance-weighted average of the *k* nearest
  stored entries, with distances taken in the bounds-normalized space so no
  parameter dominates by virtue of its units.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Mapping, Sequence

import numpy as np

from scipy.spatial import cKDTree

from repro import _shm
from repro._util import as_generator, weighted_average
from repro.obs.trace import emit as _obs_emit
from repro.space import ParameterSpace

__all__ = ["PerformanceDatabase"]

#: below this entry count the shared-memory export is not worth a segment
SHM_MIN_ENTRIES = 64


class PerformanceDatabase:
    """Exact-match store + k-NN inverse-distance interpolation."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        k_neighbors: int = 4,
        memo_size: int = 4096,
    ) -> None:
        if k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
        if memo_size < 0:
            raise ValueError(f"memo_size must be >= 0, got {memo_size}")
        self.space = space
        self.k_neighbors = int(k_neighbors)
        #: LRU capacity of the repeated-query memo (0 disables it)
        self.memo_size = int(memo_size)
        self._entries: dict[tuple[float, ...], float] = {}
        self._tree: cKDTree | None = None
        self._values_cache: np.ndarray | None = None
        # Memo over raw query bytes -> (value, was_exact).  Tuners revisit
        # the same configurations constantly (simplex vertices, incumbent
        # re-runs), so this skips the as_point quantization *and* the
        # KD-tree query on repeats.  Invalidated by add().
        self._memo: OrderedDict[bytes, tuple[float, bool]] = OrderedDict()
        #: interpolated-lookup counter (how sparse the DB looks to the tuner)
        self.n_exact = 0
        self.n_interpolated = 0
        #: queries answered from the memo (still counted in n_exact /
        #: n_interpolated so sparsity diagnostics are unchanged)
        self.n_memo_hits = 0
        # Attached shared-memory mode: sorted (m, N) configuration rows and
        # their values, mapped read-only from another process's export.  The
        # segment handles must outlive the views (dropping them unmaps).
        self._frozen_points: np.ndarray | None = None
        self._frozen_values: np.ndarray | None = None
        self._shm_segments: tuple = ()

    # -- population ---------------------------------------------------------------

    def add(self, point: Sequence[float], value: float) -> None:
        """Insert or overwrite one measurement."""
        pt = self.space.as_point(point)
        if not self.space.contains(pt):
            raise ValueError(f"point {pt!r} is not admissible")
        if not np.isfinite(value):
            raise ValueError(f"value must be finite, got {value}")
        if self._frozen_points is not None:
            self._materialize()
        self._entries[tuple(pt)] = float(value)
        self._tree = None
        self._values_cache = None
        self._memo.clear()

    def _materialize(self) -> None:
        """Copy attached shared-memory entries into a private dict.

        Called before any mutation of an attached (read-only) database; the
        database then behaves exactly like one built locally, and pickles
        through the plain-dict fallback.
        """
        assert self._frozen_points is not None and self._frozen_values is not None
        _obs_emit("db.materialize", n_entries=int(self._frozen_values.size))
        self._entries = {
            tuple(map(float, p)): float(v)
            for p, v in zip(self._frozen_points, self._frozen_values)
        }
        self._frozen_points = None
        self._frozen_values = None
        for seg in self._shm_segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - best effort
                pass
        self._shm_segments = ()
        self._tree = None
        self._values_cache = None

    @classmethod
    def from_function(
        cls,
        fn: Callable[[np.ndarray], float],
        space: ParameterSpace,
        *,
        fraction: float = 1.0,
        k_neighbors: int = 4,
        memo_size: int = 4096,
        rng: int | np.random.Generator | None = None,
    ) -> "PerformanceDatabase":
        """Populate from *fn* over a (sub)sample of the discrete lattice.

        ``fraction < 1`` keeps a uniformly random subset of lattice points,
        reproducing the paper's sparse-database setting where interpolation
        actually matters.
        """
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        gen = as_generator(rng)
        db = cls(space, k_neighbors=k_neighbors, memo_size=memo_size)
        for pt in space.grid():
            if fraction < 1.0 and gen.random() >= fraction:
                continue
            db.add(pt, float(fn(pt)))
        if len(db) == 0:
            raise ValueError("sampling produced an empty database; raise fraction")
        return db

    @classmethod
    def from_mapping(
        cls,
        entries: Mapping[tuple[float, ...], float],
        space: ParameterSpace,
        *,
        k_neighbors: int = 4,
        memo_size: int = 4096,
    ) -> "PerformanceDatabase":
        """Populate from explicit ``{config_tuple: cost}`` measurements."""
        db = cls(space, k_neighbors=k_neighbors, memo_size=memo_size)
        for pt, value in entries.items():
            db.add(np.asarray(pt, dtype=float), value)
        return db

    def __len__(self) -> int:
        if self._frozen_values is not None:
            return int(self._frozen_values.size)
        return len(self._entries)

    @property
    def is_shared(self) -> bool:
        """True while entries live in another process's shared-memory export."""
        return self._frozen_points is not None

    # -- lookup ----------------------------------------------------------------------

    def _arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Stored (points, values) as arrays, rows sorted by configuration."""
        if self._frozen_points is not None:
            assert self._frozen_values is not None
            return self._frozen_points, self._frozen_values
        pts = np.array(sorted(self._entries.keys()), dtype=float)
        vals = np.array([self._entries[tuple(p)] for p in pts], dtype=float)
        return pts, vals

    def _index(self) -> tuple[cKDTree, np.ndarray]:
        """Lazy KD-tree over bounds-normalized stored points."""
        if self._tree is None:
            pts, vals = self._arrays()
            self._tree = cKDTree(self.space.normalize_batch(pts))
            self._values_cache = vals
        assert self._values_cache is not None
        return self._tree, self._values_cache

    def lookup(self, point: Sequence[float]) -> float | None:
        """Exact-match value, or None when the configuration was never stored."""
        pt = self.space.as_point(point)
        if self._frozen_points is not None:
            if self._frozen_values.size == 0:  # pragma: no cover - empty export
                return None
            tree, vals = self._index()
            d, idx = tree.query(self.space.normalize(pt), k=1)
            # Normalization is injective on admissible points, so distance 0
            # in normalized space is equivalent to an exact dict hit.
            return float(vals[int(idx)]) if float(d) == 0.0 else None
        return self._entries.get(tuple(pt))

    def interpolate(self, point: Sequence[float]) -> float:
        """Inverse-distance-weighted average of the k nearest stored entries."""
        if len(self) == 0:
            raise ValueError("cannot interpolate from an empty database")
        tree, vals = self._index()
        q = self.space.normalize(self.space.as_point(point))
        k = min(self.k_neighbors, vals.size)
        d, idx = tree.query(q, k=k)
        d = np.atleast_1d(np.asarray(d, dtype=float))
        idx = np.atleast_1d(np.asarray(idx, dtype=int))
        if np.any(d == 0.0):
            return float(vals[idx[d == 0.0][0]])
        return weighted_average(vals[idx], 1.0 / d)

    def __call__(self, point: Sequence[float]) -> float:
        """Exact hit if stored, otherwise interpolated — the tuner objective."""
        key = (
            np.asarray(point, dtype=float).tobytes() if self.memo_size else None
        )
        if key is not None:
            hit = self._memo.get(key)
            if hit is not None:
                self._memo.move_to_end(key)
                value, was_exact = hit
                self.n_memo_hits += 1
                if was_exact:
                    self.n_exact += 1
                else:
                    self.n_interpolated += 1
                return value
        exact = self.lookup(point)
        if exact is not None:
            self.n_exact += 1
            value, was_exact = exact, True
        else:
            self.n_interpolated += 1
            value, was_exact = self.interpolate(point), False
        if key is not None:
            self._memo[key] = (value, was_exact)
            if len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        return value

    def evaluate_batch(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Vectorized :meth:`__call__` over an ``(m, N)`` batch of points.

        Repeated queries are answered from the memo (keyed exactly like the
        scalar path, so scalar and batched calls share one cache); one
        KD-tree query then answers all remaining rows at once.  Exact rows
        (distance 0 in normalized space) return the stored value, the rest
        inverse-distance interpolate.  Values and counter increments are
        bitwise identical to calling the database point-by-point; only the
        memo's internal recency order may differ (hits are touched before
        misses are inserted), which cannot affect any returned value.
        """
        pts = self.space.as_batch(points)
        m = pts.shape[0]
        if m == 0:
            return np.empty(0, dtype=float)
        if len(self) == 0:
            raise ValueError("cannot interpolate from an empty database")
        out = np.empty(m, dtype=float)
        keys: list[bytes] | None = None
        if self.memo_size:
            keys = [row.tobytes() for row in pts]
            miss: list[int] = []
            n_hit_exact = 0
            for i, key in enumerate(keys):
                hit = self._memo.get(key)
                if hit is None:
                    miss.append(i)
                    continue
                self._memo.move_to_end(key)
                value, was_exact = hit
                out[i] = value
                n_hit_exact += was_exact
            n_hits = m - len(miss)
            self.n_memo_hits += n_hits
            self.n_exact += n_hit_exact
            self.n_interpolated += n_hits - n_hit_exact
            if not miss:
                return out
            rows = np.asarray(miss, dtype=int)
            sub = pts[rows]
        else:
            miss = []
            rows = np.arange(m)
            sub = pts
        tree, vals = self._index()
        k = min(self.k_neighbors, vals.size)
        d, idx = tree.query(self.space.normalize_batch(sub), k=k)
        r = rows.size
        d = np.asarray(d, dtype=float).reshape(r, k)
        idx = np.asarray(idx, dtype=int).reshape(r, k)
        res = np.empty(r, dtype=float)
        exact = d[:, 0] == 0.0  # query distances sort ascending
        res[exact] = vals[idx[exact, 0]]
        interp = np.nonzero(~exact)[0]
        if interp.size:
            neigh_vals = vals[idx[interp]]
            weights = 1.0 / d[interp]
            for j, row in enumerate(interp):
                # np.dot per row keeps the accumulation order of the scalar
                # path's weighted_average (a matrix product could differ in
                # the last ulp); the degenerate-weight fallback is inlined
                w = weights[j]
                total = float(w.sum())
                if total <= 0.0 or not math.isfinite(total):
                    res[row] = float(neigh_vals[j].mean())
                else:
                    res[row] = float(np.dot(neigh_vals[j], w) / total)
        n_exact = int(np.count_nonzero(exact))
        self.n_exact += n_exact
        self.n_interpolated += r - n_exact
        out[rows] = res
        if keys is not None:
            for j, i in enumerate(miss):
                self._memo[keys[i]] = (float(res[j]), bool(exact[j]))
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        return out

    def cache_stats(self) -> dict[str, int]:
        """Memo/lookup effectiveness counters for diagnostics."""
        return {
            "n_exact": self.n_exact,
            "n_interpolated": self.n_interpolated,
            "n_memo_hits": self.n_memo_hits,
            "memo_len": len(self._memo),
        }

    def coverage(self) -> float:
        """Fraction of the lattice present in the database (discrete spaces)."""
        return len(self) / self.space.n_points()

    def top_entries(self, n: int) -> list[tuple[np.ndarray, float]]:
        """The *n* best (lowest-cost) stored measurements, best first."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if self._frozen_points is not None:
            order = np.argsort(self._frozen_values, kind="stable")[:n]
            return [
                (self._frozen_points[i].copy(), float(self._frozen_values[i]))
                for i in order
            ]
        ranked = sorted(self._entries.items(), key=lambda kv: kv[1])
        return [
            (np.asarray(point, dtype=float), value)
            for point, value in ranked[:n]
        ]

    # -- pickling / shared-memory broadcast --------------------------------------

    def __getstate__(self) -> dict:
        """Pickle without caches; export entry arrays via shared memory.

        Inside an active :func:`repro._shm.broadcasting` context (the
        process executor's worker-startup pickle), databases above
        ``SHM_MIN_ENTRIES`` swap their entries for shared-memory descriptors
        so the pickle stays a few hundred bytes and workers attach zero-copy
        views.  Outside a broadcast — or when shared memory is unavailable —
        the plain entries dict pickles as before.
        """
        state = self.__dict__.copy()
        # Rebuilt lazily on the receiving side; never worth shipping.
        state["_tree"] = None
        state["_values_cache"] = None
        state["_memo"] = OrderedDict()
        state["_shm_segments"] = ()
        broadcast = _shm.active_broadcast()
        if broadcast is not None and len(self) >= SHM_MIN_ENTRIES:
            try:
                pts, vals = self._arrays()
                specs = (broadcast.export_array(pts), broadcast.export_array(vals))
            except OSError:  # pragma: no cover - /dev/shm unavailable
                specs = None
            if specs is not None:
                state["_shm_specs"] = specs
                state["_entries"] = {}
                state["_frozen_points"] = None
                state["_frozen_values"] = None
                return state
        if self._frozen_points is not None:
            # Pickling an attached database without a broadcast: fall back
            # to a self-contained copy of the entries.
            state["_entries"] = {
                tuple(map(float, p)): float(v)
                for p, v in zip(self._frozen_points, self._frozen_values)
            }
            state["_frozen_points"] = None
            state["_frozen_values"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        specs = state.pop("_shm_specs", None)
        self.__dict__.update(state)
        if specs is not None:
            pts, seg_p = _shm.attach_array(specs[0])
            vals, seg_v = _shm.attach_array(specs[1])
            self._frozen_points = pts
            self._frozen_values = vals
            self._shm_segments = (seg_p, seg_v)
            _obs_emit(
                "shm.attach",
                nbytes=int(pts.nbytes + vals.nbytes),
                n_entries=int(vals.size),
            )
