"""A performance database with weighted nearest-neighbour interpolation.

The paper's controlled study (§6) does not run GS2 live: it evaluates the
optimizer against "a data base that contains the performance of the GS2
application for different parameter values", and — because the database does
not contain every combination — estimates missing points with a "weighted
average of its closest neighbors performance values".  This module
implements that database:

* entries map exact configurations to measured (or surrogate) costs;
* exact hits return the stored value;
* misses return an inverse-distance-weighted average of the *k* nearest
  stored entries, with distances taken in the bounds-normalized space so no
  parameter dominates by virtue of its units.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Mapping, Sequence

import numpy as np

from scipy.spatial import cKDTree

from repro._util import as_generator, weighted_average
from repro.space import ParameterSpace

__all__ = ["PerformanceDatabase"]


class PerformanceDatabase:
    """Exact-match store + k-NN inverse-distance interpolation."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        k_neighbors: int = 4,
        memo_size: int = 4096,
    ) -> None:
        if k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
        if memo_size < 0:
            raise ValueError(f"memo_size must be >= 0, got {memo_size}")
        self.space = space
        self.k_neighbors = int(k_neighbors)
        #: LRU capacity of the repeated-query memo (0 disables it)
        self.memo_size = int(memo_size)
        self._entries: dict[tuple[float, ...], float] = {}
        self._tree: cKDTree | None = None
        self._values_cache: np.ndarray | None = None
        # Memo over raw query bytes -> (value, was_exact).  Tuners revisit
        # the same configurations constantly (simplex vertices, incumbent
        # re-runs), so this skips the as_point quantization *and* the
        # KD-tree query on repeats.  Invalidated by add().
        self._memo: OrderedDict[bytes, tuple[float, bool]] = OrderedDict()
        #: interpolated-lookup counter (how sparse the DB looks to the tuner)
        self.n_exact = 0
        self.n_interpolated = 0
        #: queries answered from the memo (still counted in n_exact /
        #: n_interpolated so sparsity diagnostics are unchanged)
        self.n_memo_hits = 0

    # -- population ---------------------------------------------------------------

    def add(self, point: Sequence[float], value: float) -> None:
        """Insert or overwrite one measurement."""
        pt = self.space.as_point(point)
        if not self.space.contains(pt):
            raise ValueError(f"point {pt!r} is not admissible")
        if not np.isfinite(value):
            raise ValueError(f"value must be finite, got {value}")
        self._entries[tuple(pt)] = float(value)
        self._tree = None
        self._values_cache = None
        self._memo.clear()

    @classmethod
    def from_function(
        cls,
        fn: Callable[[np.ndarray], float],
        space: ParameterSpace,
        *,
        fraction: float = 1.0,
        k_neighbors: int = 4,
        memo_size: int = 4096,
        rng: int | np.random.Generator | None = None,
    ) -> "PerformanceDatabase":
        """Populate from *fn* over a (sub)sample of the discrete lattice.

        ``fraction < 1`` keeps a uniformly random subset of lattice points,
        reproducing the paper's sparse-database setting where interpolation
        actually matters.
        """
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        gen = as_generator(rng)
        db = cls(space, k_neighbors=k_neighbors, memo_size=memo_size)
        for pt in space.grid():
            if fraction < 1.0 and gen.random() >= fraction:
                continue
            db.add(pt, float(fn(pt)))
        if len(db) == 0:
            raise ValueError("sampling produced an empty database; raise fraction")
        return db

    @classmethod
    def from_mapping(
        cls,
        entries: Mapping[tuple[float, ...], float],
        space: ParameterSpace,
        *,
        k_neighbors: int = 4,
        memo_size: int = 4096,
    ) -> "PerformanceDatabase":
        """Populate from explicit ``{config_tuple: cost}`` measurements."""
        db = cls(space, k_neighbors=k_neighbors, memo_size=memo_size)
        for pt, value in entries.items():
            db.add(np.asarray(pt, dtype=float), value)
        return db

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ----------------------------------------------------------------------

    def _index(self) -> tuple[cKDTree, np.ndarray]:
        """Lazy KD-tree over bounds-normalized stored points."""
        if self._tree is None:
            pts = np.array(sorted(self._entries.keys()), dtype=float)
            vals = np.array([self._entries[tuple(p)] for p in pts], dtype=float)
            normalized = np.array(
                [self.space.normalize(p) for p in pts], dtype=float
            )
            self._tree = cKDTree(normalized)
            self._values_cache = vals
        assert self._values_cache is not None
        return self._tree, self._values_cache

    def lookup(self, point: Sequence[float]) -> float | None:
        """Exact-match value, or None when the configuration was never stored."""
        pt = self.space.as_point(point)
        return self._entries.get(tuple(pt))

    def interpolate(self, point: Sequence[float]) -> float:
        """Inverse-distance-weighted average of the k nearest stored entries."""
        if not self._entries:
            raise ValueError("cannot interpolate from an empty database")
        tree, vals = self._index()
        q = self.space.normalize(self.space.as_point(point))
        k = min(self.k_neighbors, vals.size)
        d, idx = tree.query(q, k=k)
        d = np.atleast_1d(np.asarray(d, dtype=float))
        idx = np.atleast_1d(np.asarray(idx, dtype=int))
        if np.any(d == 0.0):
            return float(vals[idx[d == 0.0][0]])
        return weighted_average(vals[idx], 1.0 / d)

    def __call__(self, point: Sequence[float]) -> float:
        """Exact hit if stored, otherwise interpolated — the tuner objective."""
        key = (
            np.asarray(point, dtype=float).tobytes() if self.memo_size else None
        )
        if key is not None:
            hit = self._memo.get(key)
            if hit is not None:
                self._memo.move_to_end(key)
                value, was_exact = hit
                self.n_memo_hits += 1
                if was_exact:
                    self.n_exact += 1
                else:
                    self.n_interpolated += 1
                return value
        exact = self.lookup(point)
        if exact is not None:
            self.n_exact += 1
            value, was_exact = exact, True
        else:
            self.n_interpolated += 1
            value, was_exact = self.interpolate(point), False
        if key is not None:
            self._memo[key] = (value, was_exact)
            if len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        return value

    def coverage(self) -> float:
        """Fraction of the lattice present in the database (discrete spaces)."""
        return len(self._entries) / self.space.n_points()

    def top_entries(self, n: int) -> list[tuple[np.ndarray, float]]:
        """The *n* best (lowest-cost) stored measurements, best first."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        ranked = sorted(self._entries.items(), key=lambda kv: kv[1])
        return [
            (np.asarray(point, dtype=float), value)
            for point, value in ranked[:n]
        ]
