"""Workloads: the GS2 performance surrogate, the performance database the
paper's simulations evaluate against, and synthetic test functions.
"""

from repro.apps.gs2 import GS2Surrogate
from repro.apps.stencil import StencilSurrogate
from repro.apps.database import PerformanceDatabase
from repro.apps.synthetic import (
    SyntheticProblem,
    plateau_problem,
    quadratic_problem,
    rastrigin_problem,
    rosenbrock_problem,
)

__all__ = [
    "GS2Surrogate",
    "StencilSurrogate",
    "PerformanceDatabase",
    "SyntheticProblem",
    "quadratic_problem",
    "rosenbrock_problem",
    "rastrigin_problem",
    "plateau_problem",
]
