"""Reproducible load generation against live tuning servers.

The capacity story has three parts: :mod:`repro.loadgen.arrivals` draws
when requests arrive (uniform / poisson / heavy-tail pareto),
:mod:`repro.loadgen.slo` scores what happened (percentiles and error
budgets), :mod:`repro.loadgen.skew` shapes *which session* each request
hits (uniform / zipf / pareto hot-session weights, the rebalancing
benchmark's workload), and :mod:`repro.loadgen.runner` drives a real
server through the real client stack in open or closed loop.  The ``repro loadgen``
CLI subcommand is a thin wrapper over :class:`LoadGenerator`.
"""

from repro.loadgen.arrivals import ARRIVALS, interarrival_times
from repro.loadgen.skew import SKEW_DISTS, session_weights
from repro.loadgen.runner import (
    LoadGenerator,
    LoadReport,
    LoadgenConfig,
    loadgen_space,
)
from repro.loadgen.slo import LatencyRecorder, SloPolicy

__all__ = [
    "ARRIVALS",
    "SKEW_DISTS",
    "interarrival_times",
    "session_weights",
    "LatencyRecorder",
    "SloPolicy",
    "LoadGenerator",
    "LoadReport",
    "LoadgenConfig",
    "loadgen_space",
]
