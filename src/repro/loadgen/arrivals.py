"""Arrival processes for the load generator.

Open-loop load is defined by *when requests arrive*, independent of how
fast the server answers them.  Three interarrival processes cover the
regimes the paper's applications exhibit:

* ``uniform`` — a metronome: every gap is exactly ``1/rate``.  The
  gentlest load at a given rate; no bursts at all.
* ``poisson`` — exponential gaps, the classic memoryless open-loop
  arrival model.  Bursts exist but are light-tailed.
* ``pareto`` — heavy-tailed gaps drawn from the same
  :class:`~repro.variability.pareto.ParetoDistribution` the variability
  models use for step durations.  Long quiet stretches punctuated by
  dense bursts: the worst realistic case for an admission controller,
  because instantaneous arrival rate far exceeds the mean rate.

All three are parameterised by the *mean* rate so a sweep can vary
burstiness while holding offered load constant.
"""

from __future__ import annotations

import numpy as np

from repro.variability.pareto import ParetoDistribution

__all__ = ["ARRIVALS", "interarrival_times"]

#: recognised arrival process names
ARRIVALS = ("uniform", "poisson", "pareto")


def interarrival_times(
    process: str,
    rate: float,
    n: int,
    *,
    rng: np.random.Generator | int | None = None,
    tail_alpha: float = 1.5,
) -> np.ndarray:
    """Draw *n* interarrival gaps (seconds) with mean ``1/rate``.

    ``tail_alpha`` shapes the ``pareto`` process only and must be > 1 so
    the mean (and hence the offered rate) is finite; smaller values mean
    heavier bursts at the same average rate.
    """
    if process not in ARRIVALS:
        raise ValueError(f"unknown arrival process {process!r}; pick from {ARRIVALS}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    mean = 1.0 / rate
    if process == "uniform":
        return np.full(n, mean)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if process == "poisson":
        return gen.exponential(mean, size=n)
    # pareto: from_mean rejects tail_alpha <= 1 (infinite-mean regime)
    dist = ParetoDistribution.from_mean(tail_alpha, mean)
    return np.asarray(dist.sample(rng=gen, size=n), dtype=float)
