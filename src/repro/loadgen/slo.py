"""Latency recording and SLO accounting for load generation.

A load point is judged by two numbers: the tail latency of the requests
that *succeeded*, and the fraction of requests that *didn't* (shed with
``busy`` past the retry budget, or failed outright).  :class:`SloPolicy`
states the target; :class:`LatencyRecorder` is the thread-safe ledger
the worker threads feed, and it produces the percentile summary and the
pass/fail verdict at the end of the point.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = ["SloPolicy", "LatencyRecorder"]


@dataclass(frozen=True)
class SloPolicy:
    """The service-level objective one load point is held to.

    ``latency_s`` bounds the p99 of successful requests; ``error_budget``
    bounds the fraction of requests that ended busy/error out of all
    requests issued (the classic error-budget formulation: 0.01 means
    99% of requests must succeed).
    """

    latency_s: float = 0.1
    error_budget: float = 0.01

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise ValueError(f"latency_s must be positive, got {self.latency_s}")
        if not 0.0 <= self.error_budget < 1.0:
            raise ValueError(
                f"error_budget must be in [0, 1), got {self.error_budget}"
            )


class LatencyRecorder:
    """Thread-safe outcome ledger for one load point.

    Workers call :meth:`ok` with each successful request's latency and
    :meth:`busy` / :meth:`error` for requests that didn't complete.  All
    mutation is under one lock — the loadgen's unit of work (a full
    round trip) is ~10^4 times the cost of an append, so contention is
    noise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._busy = 0
        self._error = 0

    # -- recording ------------------------------------------------------------

    def ok(self, latency_s: float) -> None:
        with self._lock:
            self._latencies.append(float(latency_s))

    def busy(self, n: int = 1) -> None:
        with self._lock:
            self._busy += int(n)

    def error(self, n: int = 1) -> None:
        with self._lock:
            self._error += int(n)

    # -- reading --------------------------------------------------------------

    @property
    def ok_count(self) -> int:
        with self._lock:
            return len(self._latencies)

    @property
    def busy_count(self) -> int:
        with self._lock:
            return self._busy

    @property
    def error_count(self) -> int:
        with self._lock:
            return self._error

    @property
    def total(self) -> int:
        with self._lock:
            return len(self._latencies) + self._busy + self._error

    def percentile(self, q: float) -> float:
        """The q-th percentile latency (seconds) of successful requests."""
        with self._lock:
            if not self._latencies:
                return float("nan")
            return float(np.percentile(np.asarray(self._latencies), q))

    def error_fraction(self) -> float:
        """Busy+error requests as a fraction of everything issued."""
        with self._lock:
            total = len(self._latencies) + self._busy + self._error
            if total == 0:
                return 0.0
            return (self._busy + self._error) / total

    def summary(self) -> dict:
        """One load point's scorecard (latencies in milliseconds)."""
        with self._lock:
            lat = np.asarray(self._latencies) if self._latencies else None
            busy, error = self._busy, self._error
        count = (0 if lat is None else lat.size) + busy + error
        out: dict = {
            "count": count,
            "ok": 0 if lat is None else int(lat.size),
            "busy": busy,
            "error": error,
        }
        if lat is not None:
            p50, p95, p99 = np.percentile(lat, [50, 95, 99])
            out.update(
                p50_ms=round(float(p50) * 1e3, 3),
                p95_ms=round(float(p95) * 1e3, 3),
                p99_ms=round(float(p99) * 1e3, 3),
                mean_ms=round(float(lat.mean()) * 1e3, 3),
                max_ms=round(float(lat.max()) * 1e3, 3),
            )
        return out

    def check(self, policy: SloPolicy) -> list[str]:
        """Violations of *policy* at this point; empty means the SLO held."""
        violations: list[str] = []
        p99 = self.percentile(99)
        if np.isnan(p99):
            violations.append("no successful requests")
        elif p99 > policy.latency_s:
            violations.append(
                f"p99 {p99 * 1e3:.1f}ms exceeds SLO {policy.latency_s * 1e3:.1f}ms"
            )
        frac = self.error_fraction()
        if frac > policy.error_budget:
            violations.append(
                f"error fraction {frac:.4f} exceeds budget {policy.error_budget:.4f}"
            )
        return violations
