"""Skewed per-session load weights: the "hot session" workload shaper.

Real tuning fleets are not uniformly loaded — a handful of sessions (the
application currently being tuned hard) dominate the request stream while
the long tail trickles.  This module turns a session count into a
deterministic, normalized weight vector with that shape, so the skew
benchmark and the rebalancing battery can say "session 0 gets 31% of the
load" reproducibly:

* ``zipf`` — the classic rank-frequency law, ``w_i ∝ (i+1)^-s``.
  Deterministic (no RNG): rank *i* always gets the same share.
* ``pareto`` — weights drawn from the heavy-tailed
  :class:`repro.variability.pareto.ParetoDistribution` (the same family
  the paper uses for runtime variability), then sorted descending.
  Seeded through *rng* so a fixed seed is a fixed workload.
* ``uniform`` — equal weights; the no-skew control arm.

Weights always come back descending and summing to 1, so
``sessions[0]`` is the hottest by construction and round-robin placement
(the coordinator assigns fresh sessions to the least-loaded shard, ties
to the lowest id) makes the co-location of hot sessions predictable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SKEW_DISTS", "session_weights"]

#: accepted values for the ``dist`` knob (the CLI's ``--skew``)
SKEW_DISTS = ("uniform", "zipf", "pareto")


def session_weights(
    n: int,
    *,
    dist: str = "zipf",
    s: float = 0.6,
    tail_alpha: float = 1.5,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Normalized, descending per-session load weights.

    Parameters
    ----------
    n:
        Number of sessions (>= 1).
    dist:
        One of :data:`SKEW_DISTS`.
    s:
        Zipf exponent (``dist="zipf"``); larger = more skew.  The default
        0.6 puts ~45% of the load on the top quarter of 16 sessions.
    tail_alpha:
        Pareto shape (``dist="pareto"``); must be > 1 so the mean exists.
    rng:
        Seed or generator for ``dist="pareto"`` (default: seed 0, so the
        benchmark workload is fixed without ceremony).
    """
    if n < 1:
        raise ValueError(f"need at least one session, got {n}")
    if dist not in SKEW_DISTS:
        raise ValueError(f"dist must be one of {SKEW_DISTS}, got {dist!r}")
    if dist == "uniform":
        weights = np.ones(n, dtype=np.float64)
    elif dist == "zipf":
        if s <= 0.0:
            raise ValueError(f"zipf exponent must be > 0, got {s}")
        weights = np.arange(1, n + 1, dtype=np.float64) ** -float(s)
    else:  # pareto
        from repro.variability.pareto import ParetoDistribution

        generator = (
            rng if isinstance(rng, np.random.Generator)
            else np.random.default_rng(0 if rng is None else rng)
        )
        dist_obj = ParetoDistribution.from_mean(float(tail_alpha), 1.0)
        weights = np.sort(dist_obj.sample(generator, n))[::-1]
    return weights / weights.sum()
