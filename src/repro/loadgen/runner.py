"""The load generator: reproducible open- and closed-loop load.

Two canonical load models, both driving a *live* tuning server (threaded
or asyncio, JSON or binary wire) through the real client stack:

* **closed loop** — ``sessions`` logical sessions each run ``steps``
  fetch/report rounds as fast as the server answers.  Concurrency is the
  knob; offered rate follows service time.  This is how the paper's
  applications actually behave (each rank blocks on its next
  configuration), and it is the model the capacity sweep uses.
* **open loop** — requests arrive on a schedule drawn from
  :mod:`repro.loadgen.arrivals` at a fixed mean ``rate``, regardless of
  how fast the server is answering.  Latency is measured from the
  *scheduled arrival*, so queueing delay counts (no coordinated
  omission); work the generator cannot even submit in time shows up as
  lag, and work the server refuses past the retry budget shows up
  against the error budget.

Everything is seeded: the arrival schedule, the session→worker pinning,
and the synthetic workload are all deterministic given the config, so a
capacity number is a *reproduction*, not an anecdote.

One host thread per connection multiplexes many logical sessions over
one socket (the pipelined transport), which is how thousands of sessions
fit on a small CI box: concurrency lives in the protocol, not in OS
threads.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.harmony.client import ServerBusy, TuningClient
from repro.harmony.transport import (
    PipelinedTcpClientTransport,
    TcpClientTransport,
)
from repro.loadgen.arrivals import ARRIVALS, interarrival_times
from repro.loadgen.slo import LatencyRecorder, SloPolicy
from repro.space import IntParameter, ParameterSpace

__all__ = ["LoadgenConfig", "LoadReport", "LoadGenerator", "loadgen_space"]

#: open-loop per-worker queue bound: arrivals past this are dropped (and
#: counted as errors) instead of ballooning generator memory
_OPEN_QUEUE_BOUND = 4096


def loadgen_space() -> ParameterSpace:
    """The synthetic tunable space the generator registers with."""
    return ParameterSpace(
        [IntParameter("a", -10, 10), IntParameter("b", -10, 10)]
    )


def _workload_value(point: np.ndarray) -> float:
    """The synthetic 'measured step time' for a configuration."""
    a, b = float(point[0]), float(point[1])
    return 1.0 + (a - 3.0) ** 2 + (b + 2.0) ** 2


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything one load point needs to be reproduced."""

    mode: str = "closed"  # "closed" | "open"
    sessions: int = 8  # logical sessions (protocol-level concurrency)
    steps: int = 4  # closed loop: fetch/report rounds per session
    duration_s: float = 5.0  # open loop: how long to offer load
    rate: float = 100.0  # open loop: mean arrivals per second
    arrival: str = "poisson"  # open loop: interarrival process
    tail_alpha: float = 1.5  # pareto arrivals: tail index (>1)
    connections: int = 4  # sockets == host threads
    wire: str = "binary"  # "binary" | "json"
    batch: int = 1  # configurations per fetch when > 1
    busy_retries: int = 16  # closed loop: sheds absorbed per call
    slo: SloPolicy = field(default_factory=SloPolicy)
    seed: int = 0
    session_prefix: str = "lg"

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.wire not in ("binary", "json"):
            raise ValueError(f"wire must be 'binary' or 'json', got {self.wire!r}")
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.connections < 1:
            raise ValueError(f"connections must be >= 1, got {self.connections}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}"
            )


@dataclass
class LoadReport:
    """What one load point measured."""

    config: LoadgenConfig
    wall_s: float
    summary: dict  # LatencyRecorder.summary()
    violations: list[str]  # empty == SLO held
    busy_retried: int  # sheds absorbed inside client retry loops
    max_lag_ms: float = 0.0  # open loop: worst submit-behind-schedule

    @property
    def slo_ok(self) -> bool:
        return not self.violations

    @property
    def rps(self) -> float:
        """Successful requests per second over the measured window."""
        if self.wall_s <= 0:
            return 0.0
        return self.summary.get("ok", 0) / self.wall_s

    def to_dict(self) -> dict:
        return {
            "mode": self.config.mode,
            "sessions": self.config.sessions,
            "connections": self.config.connections,
            "wire": self.config.wire,
            "wall_s": round(self.wall_s, 4),
            "rps": round(self.rps, 2),
            "busy_retried": self.busy_retried,
            "max_lag_ms": round(self.max_lag_ms, 3),
            "slo_ok": self.slo_ok,
            "violations": list(self.violations),
            **self.summary,
        }


class LoadGenerator:
    """Drives one live server address with one :class:`LoadgenConfig`."""

    def __init__(
        self,
        host: str,
        port: int,
        config: LoadgenConfig | None = None,
        *,
        space: ParameterSpace | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.config = config if config is not None else LoadgenConfig()
        self.space = space if space is not None else loadgen_space()
        self.timeout = float(timeout)

    # -- plumbing -------------------------------------------------------------

    def _dial(self):
        if self.config.wire == "binary":
            return PipelinedTcpClientTransport(self.host, self.port, timeout=self.timeout)
        return TcpClientTransport(self.host, self.port, timeout=self.timeout)

    def _session_names(self) -> list[str]:
        return [f"{self.config.session_prefix}-{i}" for i in range(self.config.sessions)]

    def _make_clients(self, transport, names: list[str], *, busy_retries: int):
        """One registered client per logical session, all sharing *transport*."""
        clients = []
        for name in names:
            client = TuningClient(
                transport,
                session=name,
                busy_retries=busy_retries,
            )
            client.open_session(name)
            client.register(self.space)
            clients.append(client)
        return clients

    def _shard(self, names: list[str]) -> list[list[str]]:
        """Pin sessions to workers round-robin (deterministic)."""
        workers = min(self.config.connections, len(names))
        shards: list[list[str]] = [[] for _ in range(workers)]
        for i, name in enumerate(names):
            shards[i % workers].append(name)
        return shards

    # -- entry point ----------------------------------------------------------

    def run(self) -> LoadReport:
        if self.config.mode == "closed":
            return self._run_closed()
        return self._run_open()

    # -- closed loop ----------------------------------------------------------

    def _run_closed(self) -> LoadReport:
        cfg = self.config
        recorder = LatencyRecorder()
        shards = self._shard(self._session_names())
        barrier = threading.Barrier(len(shards) + 1)
        busy_total = [0] * len(shards)
        failures: list[BaseException] = []

        def worker(idx: int, names: list[str]) -> None:
            transport = self._dial()
            try:
                clients = self._make_clients(
                    transport, names, busy_retries=cfg.busy_retries
                )
                barrier.wait()  # register/warmup excluded from measurement
                for _ in range(cfg.steps):
                    for client in clients:
                        self._one_round(client, recorder)
                busy_total[idx] = sum(c.busy_seen for c in clients)
            except BaseException as exc:  # noqa: BLE001 - ledger, not control flow
                failures.append(exc)
                barrier.abort()
            finally:
                transport.close()

        threads = [
            threading.Thread(target=worker, args=(i, names), daemon=True)
            for i, names in enumerate(shards)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        if failures:
            raise failures[0]
        return LoadReport(
            config=cfg,
            wall_s=wall,
            summary=recorder.summary(),
            violations=recorder.check(cfg.slo),
            busy_retried=sum(busy_total),
        )

    def _one_round(self, client: TuningClient, recorder: LatencyRecorder) -> None:
        """One fetch/report unit of work, timed end to end."""
        cfg = self.config
        start = time.perf_counter()
        try:
            if cfg.batch > 1:
                points = client.fetch_many(cfg.batch)
                client.report_many([_workload_value(p) for p in points])
            else:
                point = client.fetch()
                client.report(_workload_value(point))
        except ServerBusy:
            recorder.busy()  # shed past the retry budget
            return
        except (ConnectionError, OSError, TimeoutError, RuntimeError):
            recorder.error()
            return
        recorder.ok(time.perf_counter() - start)

    # -- open loop ------------------------------------------------------------

    def _run_open(self) -> LoadReport:
        cfg = self.config
        recorder = LatencyRecorder()
        names = self._session_names()
        shards = self._shard(names)
        queues: list[queue.Queue] = [
            queue.Queue(maxsize=_OPEN_QUEUE_BOUND) for _ in shards
        ]
        ready = threading.Barrier(len(shards) + 1)
        max_lag = [0.0] * len(shards)
        busy_total = [0] * len(shards)
        failures: list[BaseException] = []

        def worker(idx: int, my_names: list[str]) -> None:
            transport = self._dial()
            try:
                # Setup (open_session/register) retries through busy spells;
                # the *measured* phase sheds instead — a refused request is
                # a lost arrival — so the retry budget drops to 0 after.
                clients = dict(
                    zip(
                        my_names,
                        self._make_clients(
                            transport, my_names, busy_retries=10_000
                        ),
                    )
                )
                for client in clients.values():
                    client.busy_retries = 0
                ready.wait()
                while True:
                    job = queues[idx].get()
                    if job is None:
                        break
                    scheduled, name = job
                    lag = time.perf_counter() - scheduled
                    if lag > max_lag[idx]:
                        max_lag[idx] = lag
                    client = clients[name]
                    try:
                        if cfg.batch > 1:
                            points = client.fetch_many(cfg.batch)
                            client.report_many(
                                [_workload_value(p) for p in points]
                            )
                        else:
                            point = client.fetch()
                            client.report(_workload_value(point))
                    except ServerBusy:
                        busy_total[idx] += 1
                        recorder.busy()
                        continue
                    except (ConnectionError, OSError, TimeoutError, RuntimeError):
                        recorder.error()
                        continue
                    # Latency from *scheduled arrival*: queueing counts.
                    recorder.ok(time.perf_counter() - scheduled)
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)
                ready.abort()
            finally:
                transport.close()

        threads = [
            threading.Thread(target=worker, args=(i, names_i), daemon=True)
            for i, names_i in enumerate(shards)
        ]
        for thread in threads:
            thread.start()
        ready.wait()

        # Pace arrivals off a pre-drawn schedule (reproducible), assigning
        # each arrival to its session's pinned worker.
        rng = np.random.default_rng(cfg.seed)
        n_expected = max(16, int(cfg.rate * cfg.duration_s * 2))
        gaps = interarrival_times(
            cfg.arrival, cfg.rate, n_expected, rng=rng, tail_alpha=cfg.tail_alpha
        )
        start = time.perf_counter()
        deadline = start + cfg.duration_s
        next_at = start
        i = 0
        while True:
            next_at += float(gaps[i % gaps.size])
            i += 1
            if next_at >= deadline:
                break
            delay = next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            name = names[(i - 1) % len(names)]
            widx = names.index(name) % len(shards)
            try:
                queues[widx].put_nowait((next_at, name))
            except queue.Full:
                recorder.error()  # generator-side drop: bounded memory
        for q in queues:
            q.put(None)
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        if failures:
            raise failures[0]
        return LoadReport(
            config=cfg,
            wall_s=wall,
            summary=recorder.summary(),
            violations=recorder.check(cfg.slo),
            busy_retried=sum(busy_total),
            max_lag_ms=max(max_lag) * 1e3 if max_lag else 0.0,
        )
