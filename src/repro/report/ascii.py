"""Monospace plotting primitives.

Pure functions from arrays to strings — deterministic, dependency-free and
easily tested.  Conventions: y grows upward, markers overwrite the grid,
axes are labelled with min/max values only (these are diagnostics, not
publication graphics).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["line_plot", "histogram", "heatmap", "sparkline"]

_SPARK_BLOCKS = " .:-=+*#%@"


def _clean_xy(
    x: Sequence[float] | None, y: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    y_arr = np.asarray(y, dtype=float).ravel()
    if y_arr.size == 0:
        raise ValueError("cannot plot an empty series")
    if not np.all(np.isfinite(y_arr)):
        raise ValueError("series must be finite")
    if x is None:
        x_arr = np.arange(y_arr.size, dtype=float)
    else:
        x_arr = np.asarray(x, dtype=float).ravel()
        if x_arr.shape != y_arr.shape:
            raise ValueError(
                f"x and y must match: {x_arr.shape} vs {y_arr.shape}"
            )
        if not np.all(np.isfinite(x_arr)):
            raise ValueError("x values must be finite")
    return x_arr, y_arr


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line intensity strip of a series (used for trace previews)."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot render an empty series")
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        raise ValueError("series is all-NaN")
    if arr.size > width:
        # Downsample by taking the max of each chunk (spikes must survive).
        chunks = np.array_split(arr, width)
        arr = np.array([c.max() for c in chunks])
    lo, hi = float(arr.min()), float(arr.max())
    span = (hi - lo) or 1.0
    idx = ((arr - lo) / span * (len(_SPARK_BLOCKS) - 1)).astype(int)
    return "".join(_SPARK_BLOCKS[i] for i in idx)


def line_plot(
    series: dict[str, tuple[Sequence[float] | None, Sequence[float]]],
    *,
    width: int = 70,
    height: int = 16,
    title: str = "",
    logy: bool = False,
) -> str:
    """Multi-series scatter/line plot on a character grid.

    ``series`` maps a label to ``(x, y)`` (x may be None for indices).  Each
    series gets a distinct marker; overlapping cells show the later series.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("plot area too small")
    markers = "ox+*@#%&"
    cleaned = {
        label: _clean_xy(x, y) for label, (x, y) in series.items()
    }
    all_x = np.concatenate([x for x, _ in cleaned.values()])
    all_y = np.concatenate([y for _, y in cleaned.values()])
    if logy:
        if np.any(all_y <= 0):
            raise ValueError("logy requires positive y values")
        transform = np.log10
    else:
        transform = lambda v: v  # noqa: E731 - tiny local adapter
    ty = transform(all_y)
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(ty.min()), float(ty.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (label, (x, y)), marker in zip(cleaned.items(), markers):
        tvals = transform(y)
        cols = ((x - x_lo) / x_span * (width - 1)).astype(int)
        rows = ((tvals - y_lo) / y_span * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker
    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:.4g}" if not logy else f"1e{y_hi:.2f}"
    y_bot = f"{y_lo:.4g}" if not logy else f"1e{y_lo:.2f}"
    label_w = max(len(y_top), len(y_bot))
    for i, row in enumerate(grid):
        prefix = y_top if i == 0 else (y_bot if i == height - 1 else "")
        lines.append(f"{prefix:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}" + " " * max(1, width - 12) + f"{x_hi:.4g}"
    lines.append(" " * (label_w + 2) + x_axis[: width + 2])
    legend = "  ".join(
        f"{marker}={label}" for (label, _), marker in zip(cleaned.items(), markers)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)


def histogram(
    data: Sequence[float],
    *,
    bins: int = 20,
    width: int = 50,
    title: str = "",
    log_counts: bool = False,
) -> str:
    """Horizontal-bar histogram; optionally log-scaled bar lengths so heavy
    tails stay visible next to the bulk."""
    arr = np.asarray(data, dtype=float).ravel()
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("cannot histogram an empty sample")
    if bins < 1 or width < 5:
        raise ValueError("bins and width must be sensible")
    counts, edges = np.histogram(arr, bins=bins)
    if log_counts:
        scaled = np.zeros(counts.size, dtype=float)
        positive = counts > 0
        scaled[positive] = np.log10(counts[positive]) + 1.0
    else:
        scaled = counts.astype(float)
    peak = scaled.max() or 1.0
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(scaled[i] / peak * width))
        lines.append(
            f"[{edges[i]:>10.4g}, {edges[i+1]:>10.4g}) |{bar:<{width}}| {count}"
        )
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    *,
    row_labels: Sequence[object] | None = None,
    col_labels: Sequence[object] | None = None,
    title: str = "",
) -> str:
    """Intensity map of a 2-D array (dark = low cost, bright = high)."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.size == 0:
        raise ValueError(f"need a non-empty 2-D matrix, got shape {m.shape}")
    if not np.all(np.isfinite(m)):
        raise ValueError("matrix must be finite")
    lo, hi = float(m.min()), float(m.max())
    span = (hi - lo) or 1.0
    if row_labels is not None and len(row_labels) != m.shape[0]:
        raise ValueError("row_labels length mismatch")
    if col_labels is not None and len(col_labels) != m.shape[1]:
        raise ValueError("col_labels length mismatch")
    label_w = max((len(str(r)) for r in row_labels), default=0) if row_labels else 0
    lines = [title] if title else []
    lines.append(f"scale: '{_SPARK_BLOCKS[0]}'={lo:.4g} .. '{_SPARK_BLOCKS[-1]}'={hi:.4g}")
    for i in range(m.shape[0]):
        idx = ((m[i] - lo) / span * (len(_SPARK_BLOCKS) - 1)).astype(int)
        row = "".join(_SPARK_BLOCKS[j] for j in idx)
        prefix = f"{str(row_labels[i]):>{label_w}} " if row_labels else ""
        lines.append(prefix + "|" + row + "|")
    if col_labels:
        first, last = str(col_labels[0]), str(col_labels[-1])
        pad = " " * (label_w + 1) if row_labels else ""
        gap = max(1, m.shape[1] - len(first) - len(last))
        lines.append(pad + " " + first + " " * gap + last)
    return "\n".join(lines)
