"""Plain-text rendering of experiment data (plots for terminals and logs).

The benchmark harness and CLI regenerate the paper's figures as *data*;
this package renders them as monospace line plots, histograms and heatmaps
so a terminal user can eyeball the shapes without a plotting stack.
"""

from repro.report.ascii import heatmap, histogram, line_plot, sparkline

__all__ = ["line_plot", "histogram", "heatmap", "sparkline"]
