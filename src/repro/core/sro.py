"""Algorithm 1 — Sequential Rank Ordering (SRO).

The sequential baseline PRO is built from.  Per iteration:

1. evaluate the single reflection of the *worst* vertex through the best,
   ``r = Π(2 v0 - v^n)``;
2. if ``f(r) < f(v0)``, evaluate the expansion ``e = Π(3 v0 - 2 v^n)``;
3. accept expansion / reflection / shrink for **all** vertices accordingly,
   evaluating the transformed vertices one at a time (this is a sequential
   algorithm: each evaluation costs one application time step).

The ask/tell protocol reflects the sequentiality: every ``ask`` returns a
single point, so the session charges SRO one time step per evaluation — the
cost model under which the paper argues PRO's parallel advantage.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

import numpy as np

from repro.core.base import BatchTuner
from repro.core.initial import axial_simplex, minimal_simplex
from repro.core.simplex import Simplex, Vertex, expand, reflect, shrink
from repro.core.stopping import ConvergenceProbe
from repro.space import ParameterSpace

__all__ = ["SequentialRankOrdering", "SroPhase"]


class SroPhase(enum.Enum):
    """Internal state-machine phase of the SRO tuner."""

    INIT = "init"
    REFLECT_CHECK = "reflect_check"
    EXPAND_CHECK = "expand_check"
    STEP = "step"
    PROBE = "probe"
    DONE = "done"


class SequentialRankOrdering(BatchTuner):
    """The paper's SRO (Algorithm 1) as a one-point-at-a-time ask/tell tuner."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        initial_points: Sequence[np.ndarray] | None = None,
        r: float = 0.2,
        simplex_shape: str = "axial",
    ) -> None:
        super().__init__(space)
        if initial_points is not None:
            pts = [space.as_point(p) for p in initial_points]
            if len(pts) < 2:
                raise ValueError("need at least 2 initial simplex vertices")
            for p in pts:
                if not space.contains(p):
                    raise ValueError(f"initial point {p!r} is not admissible")
        elif simplex_shape == "axial":
            pts = axial_simplex(space, r)
        elif simplex_shape == "minimal":
            pts = minimal_simplex(space, r)
        else:
            raise ValueError(
                f"simplex_shape must be 'axial' or 'minimal', got {simplex_shape!r}"
            )
        self.phase = SroPhase.INIT
        self.simplex: Simplex | None = None
        self._probe = ConvergenceProbe(space)
        self.n_iterations = 0
        self.n_restarts = 0
        # sequential-evaluation plumbing: one queue, collected results, and
        # a commit callback fired once the queue drains.
        self._queue: list[np.ndarray] = [p.copy() for p in pts]
        self._collected: list[Vertex] = []
        self._commit: Callable[[list[Vertex]], None] = self._commit_init
        self._reflection_value = float("inf")
        self._step_kind = ""

    # -- incumbent -----------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self.simplex is not None

    @property
    def best_point(self) -> np.ndarray:
        if self.simplex is None:
            return self._queue[0].copy() if self._queue else np.asarray([])
        return self.simplex.best.point.copy()

    @property
    def best_value(self) -> float:
        if self.simplex is None:
            return float("inf")
        return self.simplex.best.value

    # -- ask/tell ---------------------------------------------------------------

    def _ask(self) -> list[np.ndarray]:
        if self.phase is SroPhase.DONE:
            return []
        if self.phase in (SroPhase.INIT, SroPhase.STEP, SroPhase.PROBE):
            return [self._queue[len(self._collected)].copy()]
        assert self.simplex is not None
        v0 = self.simplex.best.point
        vn = self.simplex.worst.point
        if self.phase is SroPhase.REFLECT_CHECK:
            return [self.space.project(reflect(v0, vn), v0)]
        if self.phase is SroPhase.EXPAND_CHECK:
            return [self.space.project(expand(v0, vn), v0)]
        raise AssertionError(f"unhandled phase {self.phase}")  # pragma: no cover

    def _tell(self, batch: list[np.ndarray], values: list[float]) -> None:
        if self.phase in (SroPhase.INIT, SroPhase.STEP, SroPhase.PROBE):
            self._collected.append(Vertex(batch[0], values[0]))
            if len(self._collected) == len(self._queue):
                collected, commit = self._collected, self._commit
                self._collected = []
                self._queue = []
                commit(collected)
            return
        assert self.simplex is not None
        if self.phase is SroPhase.REFLECT_CHECK:
            if values[0] < self.simplex.best.value:
                self._reflection_value = values[0]
                self.phase = SroPhase.EXPAND_CHECK
            else:
                self._start_step("shrink", self.simplex.shrink_points())
            return
        if self.phase is SroPhase.EXPAND_CHECK:
            if values[0] < self._reflection_value:
                self._start_step("expand", self.simplex.expansion_points())
            else:
                self._start_step("reflect", self.simplex.reflection_points())
            return
        raise AssertionError(f"tell in unhandled phase {self.phase}")  # pragma: no cover

    # -- queue management ----------------------------------------------------------

    def _start_step(self, kind: str, raw_points: list[np.ndarray]) -> None:
        assert self.simplex is not None
        v0 = self.simplex.best.point
        self._queue = [self.space.project(p, v0) for p in raw_points]
        self._collected = []
        self._step_kind = kind
        self._commit = self._commit_step
        self.phase = SroPhase.STEP

    def _commit_init(self, collected: list[Vertex]) -> None:
        self.simplex = Simplex(collected)
        self.step_log.append("init")
        self._after_update()

    def _commit_step(self, collected: list[Vertex]) -> None:
        assert self.simplex is not None
        self.simplex.replace_moving(collected)
        self.step_log.append(self._step_kind)
        self._after_update()

    def _commit_probe(self, collected: list[Vertex]) -> None:
        assert self.simplex is not None
        values = [v.value for v in collected]
        if ConvergenceProbe.is_local_minimum(self.simplex.best.value, values):
            self.phase = SroPhase.DONE
            self._mark_converged("local_minimum")
            return
        self.simplex = Simplex([self.simplex.best.copy()] + collected)
        self.n_restarts += 1
        self.step_log.append("probe_restart")
        self.phase = SroPhase.REFLECT_CHECK

    def _after_update(self) -> None:
        assert self.simplex is not None
        self.n_iterations += 1
        if self._probe.simplex_collapsed(self.simplex.points()):
            probes = self._probe.probe_points(self.simplex.best.point)
            if not probes:
                self.phase = SroPhase.DONE
                self._mark_converged("no_neighbours")
                return
            self._queue = probes
            self._collected = []
            self._commit = self._commit_probe
            self.phase = SroPhase.PROBE
        else:
            self.phase = SroPhase.REFLECT_CHECK
