"""Algorithm 2 — Parallel Rank Ordering (PRO).

Each iteration transforms the whole simplex around its best vertex ``v0``:

1. **Reflection step** — all n reflections ``r^j = Π(2 v0 - v^j)`` are
   evaluated *in parallel* (one application time step on n processors).
2. **Expansion check** — if the best reflection beats ``f(v0)``, the single
   most promising expansion ``e = Π(3 v0 - 2 v^l)`` (l = argmin over
   reflections) is evaluated first.  The paper found some expansion points
   have terrible performance; paying one cheap check avoids charging a full
   parallel step for a doomed expansion.
3. **Expansion step** — if the check also beats the best reflection, all n
   expansions ``e^j = Π(3 v0 - 2 v^j)`` are evaluated in parallel and become
   the new simplex; otherwise the reflections do.
4. **Shrink step** — if no reflection beat ``f(v0)``, all vertices shrink
   halfway toward ``v0`` (evaluated in parallel).

Acceptance is against the **best** vertex (unlike Nelder–Mead's
better-than-worst rule), which is what puts PRO in the provably convergent
GSS class (§3.2).  With n processors an iteration costs at most 3 time
steps.

Two ablation switches reproduce the "alternative parallel variants"
mentioned in §3.2:

* ``greedy_acceptance`` — accept a reflection that merely beats the *worst*
  vertex (the Nelder–Mead-style rule).  Warning: because reflection around
  ``v0`` is an involution, this rule can ping-pong the simplex between two
  mirror configurations forever without shrinking — the concrete instability
  that motivates the paper's stricter beat-the-best rule;
* ``eager_expansion`` — skip the single-point expansion check and evaluate
  the full expansion batch immediately, keeping whichever batch (reflection
  or expansion) achieved the better minimum.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.core.base import BatchTuner
from repro.core.initial import axial_simplex, minimal_simplex
from repro.obs.trace import emit as _obs_emit
from repro.core.simplex import Simplex, Vertex, expand, reflect, shrink
from repro.core.stopping import ConvergenceProbe
from repro.space import ParameterSpace

__all__ = ["ParallelRankOrdering", "ProPhase"]


class ProPhase(enum.Enum):
    """Internal state-machine phase of the PRO tuner."""

    AUTOSIZE = "autosize"
    INIT = "init"
    REFLECT = "reflect"
    EXPAND_CHECK = "expand_check"
    EXPAND = "expand"
    SHRINK = "shrink"
    PROBE = "probe"
    DONE = "done"


class ParallelRankOrdering(BatchTuner):
    """The paper's PRO tuner (Algorithm 2) as an ask/tell state machine."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        initial_points: Sequence[np.ndarray] | None = None,
        r: float = 0.2,
        simplex_shape: str = "axial",
        greedy_acceptance: bool = False,
        eager_expansion: bool = False,
        auto_size: bool = False,
        auto_size_candidates: Sequence[float] = (0.1, 0.2, 0.4, 0.8),
    ) -> None:
        super().__init__(space)
        if simplex_shape not in ("axial", "minimal"):
            raise ValueError(
                f"simplex_shape must be 'axial' or 'minimal', got {simplex_shape!r}"
            )
        builder = axial_simplex if simplex_shape == "axial" else minimal_simplex
        self._candidate_simplexes: dict[float, list[np.ndarray]] = {}
        #: the initial relative size actually used (set after auto-sizing)
        self.chosen_r: float | None = None
        if initial_points is not None:
            if auto_size:
                raise ValueError("auto_size cannot be combined with initial_points")
            pts = [space.as_point(p) for p in initial_points]
            if len(pts) < 2:
                raise ValueError("need at least 2 initial simplex vertices")
            for p in pts:
                if not space.contains(p):
                    raise ValueError(f"initial point {p!r} is not admissible")
        elif auto_size:
            # §3.2.3 future work: choose the initial size adaptively.  All
            # candidate simplexes are evaluated together in the first batch
            # (cheap on a parallel machine) and the best-scoring one becomes
            # the starting simplex.
            candidates = sorted({float(c) for c in auto_size_candidates})
            if len(candidates) < 2:
                raise ValueError("auto_size needs at least two candidate sizes")
            for c in candidates:
                self._candidate_simplexes[c] = builder(space, c)
            pts = []  # filled after the AUTOSIZE batch
        else:
            pts = builder(space, r)
            self.chosen_r = float(r)
        self._initial_points = pts
        self.greedy_acceptance = bool(greedy_acceptance)
        self.eager_expansion = bool(eager_expansion)
        self.phase = ProPhase.AUTOSIZE if auto_size else ProPhase.INIT
        self.simplex: Simplex | None = None
        self._probe = ConvergenceProbe(space)
        #: completed PRO loop iterations (one accepted transform each)
        self.n_iterations = 0
        #: number of probe-certified restarts performed
        self.n_restarts = 0
        # transient per-phase storage
        self._moving: list[Vertex] = []
        self._reflections: list[Vertex] = []
        self._best_reflection_idx = -1
        self._probe_batch: list[np.ndarray] = []

    # -- incumbent ------------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self.simplex is not None

    @property
    def best_point(self) -> np.ndarray:
        if self.simplex is None:
            if self._initial_points:
                return self._initial_points[0].copy()
            return self.space.center()
        return self.simplex.best.point.copy()

    @property
    def best_value(self) -> float:
        if self.simplex is None:
            return float("inf")
        return self.simplex.best.value

    @property
    def max_batch_size(self) -> int:
        """Largest batch any phase can ask for (sizes session sample buffers).

        REFLECT/EXPAND/SHRINK move at most ``n_vertices - 1`` points, PROBE
        asks up to ``2 N`` certificate points, and a probe restart rebuilds
        the simplex from those probes (so later moving batches stay ≤ 2 N).
        """
        dim = self.space.dimension
        sizes = [2 * dim, dim + 1, 1]
        if self._initial_points:
            sizes.append(len(self._initial_points))
        if self._candidate_simplexes:
            sizes.append(sum(len(p) for p in self._candidate_simplexes.values()))
        if self.simplex is not None:
            sizes.append(self.simplex.n_vertices - 1)
        return max(sizes)

    def _moving_matrix(self) -> np.ndarray:
        """The moving vertices stacked as an (m, N) matrix.

        The simplex transforms broadcast over rows, and
        :meth:`ParameterSpace.project_batch` projects column-wise — both
        bitwise-identical to the former per-vertex loop.
        """
        return np.array([v.point for v in self._moving], dtype=float)

    # -- ask -------------------------------------------------------------------

    def _ask(self) -> list[np.ndarray]:
        if self.phase is ProPhase.AUTOSIZE:
            # One batch holding every candidate simplex's vertices, deduped.
            seen: dict[tuple, np.ndarray] = {}
            for pts in self._candidate_simplexes.values():
                for p in pts:
                    seen.setdefault(tuple(p), p)
            return [p.copy() for p in seen.values()]
        if self.phase is ProPhase.INIT:
            return [p.copy() for p in self._initial_points]
        if self.phase is ProPhase.REFLECT:
            assert self.simplex is not None
            v0 = self.simplex.best.point
            self._moving = [v.copy() for v in self.simplex.vertices[1:]]
            return list(self.space.project_batch(reflect(v0, self._moving_matrix()), v0))
        if self.phase is ProPhase.EXPAND_CHECK:
            assert self.simplex is not None
            v0 = self.simplex.best.point
            vl = self._moving[self._best_reflection_idx].point
            return [self.space.project(expand(v0, vl), v0)]
        if self.phase is ProPhase.EXPAND:
            assert self.simplex is not None
            v0 = self.simplex.best.point
            return list(self.space.project_batch(expand(v0, self._moving_matrix()), v0))
        if self.phase is ProPhase.SHRINK:
            assert self.simplex is not None
            v0 = self.simplex.best.point
            return list(self.space.project_batch(shrink(v0, self._moving_matrix()), v0))
        if self.phase is ProPhase.PROBE:
            assert self.simplex is not None
            self._probe_batch = self._probe.probe_points(self.simplex.best.point)
            if not self._probe_batch:
                # No admissible neighbours at all: trivially a local minimum.
                self.phase = ProPhase.DONE
                self._mark_converged("no_neighbours")
                return []
            return [p.copy() for p in self._probe_batch]
        if self.phase is ProPhase.DONE:
            return []
        raise AssertionError(f"unhandled phase {self.phase}")  # pragma: no cover

    # -- tell -------------------------------------------------------------------

    def _tell(self, batch: list[np.ndarray], values: list[float]) -> None:
        if self.phase is ProPhase.AUTOSIZE:
            value_of = {tuple(p): v for p, v in zip(batch, values)}
            dim = self.space.dimension
            best_r, best_score, best_vertices = None, float("inf"), None
            for r, pts in sorted(self._candidate_simplexes.items()):
                keys = {tuple(p) for p in pts}
                if len(keys) < min(dim + 1, len(pts)):
                    continue  # projection collapsed this candidate: cannot span
                vertex_values = [value_of[tuple(p)] for p in pts]
                # Score: mean vertex cost — a large simplex whose marginal
                # vertices are terrible loses to a mid-size one; a collapsed
                # tiny simplex was already excluded.
                score = float(np.mean(vertex_values))
                if score < best_score:
                    best_r, best_score = r, score
                    best_vertices = [
                        Vertex(p, value_of[tuple(p)]) for p in pts
                    ]
            if best_vertices is None:
                # Every candidate collapsed (extremely coarse lattice): fall
                # back to the largest candidate's (possibly duplicated) set.
                r, pts = max(self._candidate_simplexes.items())
                best_r = r
                best_vertices = [Vertex(p, value_of[tuple(p)]) for p in pts]
            self.chosen_r = float(best_r)
            self.simplex = Simplex(best_vertices)
            self.step_log.append(f"autosize:r={best_r:g}")
            _obs_emit("pro.step", step="autosize", r=float(best_r))
            self._after_update()
            return
        if self.phase is ProPhase.INIT:
            self.simplex = Simplex(
                [Vertex(p, v) for p, v in zip(batch, values)]
            )
            self.step_log.append("init")
            _obs_emit("pro.step", step="init", n_vertices=self.simplex.n_vertices)
            self._after_update()
            return
        assert self.simplex is not None
        if self.phase is ProPhase.REFLECT:
            self._reflections = [Vertex(p, v) for p, v in zip(batch, values)]
            vals = np.asarray(values, dtype=float)
            self._best_reflection_idx = int(np.argmin(vals))
            threshold = (
                self.simplex.worst.value
                if self.greedy_acceptance
                else self.simplex.best.value
            )
            if vals[self._best_reflection_idx] < threshold:
                self.phase = (
                    ProPhase.EXPAND if self.eager_expansion else ProPhase.EXPAND_CHECK
                )
            else:
                self.phase = ProPhase.SHRINK
            return
        if self.phase is ProPhase.EXPAND_CHECK:
            best_reflection = self._reflections[self._best_reflection_idx].value
            passed = values[0] < best_reflection
            _obs_emit(
                "pro.expand_check",
                passed=bool(passed),
                check_value=float(values[0]),
                best_reflection=float(best_reflection),
            )
            if passed:
                self.phase = ProPhase.EXPAND
            else:
                self.simplex.replace_moving(self._reflections)
                self.step_log.append("reflect")
                _obs_emit("pro.step", step="reflect")
                self._after_update()
            return
        if self.phase is ProPhase.EXPAND:
            expansions = [Vertex(p, v) for p, v in zip(batch, values)]
            if self.eager_expansion:
                # Keep whichever batch achieved the better minimum.
                exp_min = min(v.value for v in expansions)
                ref_min = self._reflections[self._best_reflection_idx].value
                if exp_min < ref_min:
                    self.simplex.replace_moving(expansions)
                    self.step_log.append("expand")
                    _obs_emit("pro.step", step="expand")
                else:
                    self.simplex.replace_moving(self._reflections)
                    self.step_log.append("reflect")
                    _obs_emit("pro.step", step="reflect")
            else:
                self.simplex.replace_moving(expansions)
                self.step_log.append("expand")
                _obs_emit("pro.step", step="expand")
            self._after_update()
            return
        if self.phase is ProPhase.SHRINK:
            self.simplex.replace_moving(
                [Vertex(p, v) for p, v in zip(batch, values)]
            )
            self.step_log.append("shrink")
            _obs_emit("pro.step", step="shrink")
            self._after_update()
            return
        if self.phase is ProPhase.PROBE:
            if ConvergenceProbe.is_local_minimum(self.simplex.best.value, values):
                self.phase = ProPhase.DONE
                self._mark_converged("local_minimum")
                return
            restart = [self.simplex.best.copy()] + [
                Vertex(p, v) for p, v in zip(batch, values)
            ]
            self.simplex = Simplex(restart)
            self.n_restarts += 1
            self.step_log.append("probe_restart")
            _obs_emit("pro.step", step="probe_restart", n_restarts=self.n_restarts)
            self.phase = ProPhase.REFLECT
            return
        raise AssertionError(f"tell in unhandled phase {self.phase}")  # pragma: no cover

    # -- checkpointing -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the tuner's full search state (JSON-compatible).

        Together with :meth:`from_dict` this lets a long-running tuning
        service checkpoint and restart without losing the simplex.  An
        in-flight (asked but not yet told) batch is preserved; the restored
        tuner expects ``tell`` for it exactly like the original would.
        """

        def dump_vertices(vertices: list[Vertex]) -> list[list]:
            return [[[float(x) for x in v.point], float(v.value)] for v in vertices]

        return {
            "pending": (
                [[float(x) for x in p] for p in self._pending]
                if self._pending is not None
                else None
            ),
            "phase": self.phase.value,
            "state": self.state.value,
            "simplex": (
                dump_vertices(self.simplex.vertices) if self.simplex else None
            ),
            "moving": dump_vertices(self._moving),
            "reflections": dump_vertices(self._reflections),
            "best_reflection_idx": self._best_reflection_idx,
            "probe_batch": [[float(x) for x in p] for p in self._probe_batch],
            "initial_points": [
                [float(x) for x in p] for p in self._initial_points
            ],
            "candidate_simplexes": {
                str(r): [[float(x) for x in p] for p in pts]
                for r, pts in self._candidate_simplexes.items()
            },
            "chosen_r": self.chosen_r,
            "greedy_acceptance": self.greedy_acceptance,
            "eager_expansion": self.eager_expansion,
            "n_iterations": self.n_iterations,
            "n_restarts": self.n_restarts,
            "n_evaluations": self.n_evaluations,
            "n_batches": self.n_batches,
            "step_log": list(self.step_log),
        }

    @classmethod
    def from_dict(cls, space: ParameterSpace, data: dict) -> "ParallelRankOrdering":
        """Restore a tuner checkpointed with :meth:`to_dict`."""
        from repro.core.base import TunerState

        tuner = cls.__new__(cls)
        BatchTuner.__init__(tuner, space)

        def load_vertices(rows: list) -> list[Vertex]:
            return [Vertex(np.asarray(p, dtype=float), v) for p, v in rows]

        tuner.state = TunerState(data["state"])
        tuner._pending = (
            [np.asarray(p, dtype=float) for p in data["pending"]]
            if data.get("pending") is not None
            else None
        )
        tuner.phase = ProPhase(data["phase"])
        tuner.simplex = (
            Simplex(load_vertices(data["simplex"]))
            if data["simplex"] is not None
            else None
        )
        tuner._moving = load_vertices(data["moving"])
        tuner._reflections = load_vertices(data["reflections"])
        tuner._best_reflection_idx = int(data["best_reflection_idx"])
        tuner._probe_batch = [
            np.asarray(p, dtype=float) for p in data["probe_batch"]
        ]
        tuner._initial_points = [
            np.asarray(p, dtype=float) for p in data["initial_points"]
        ]
        tuner._candidate_simplexes = {
            float(r): [np.asarray(p, dtype=float) for p in pts]
            for r, pts in data["candidate_simplexes"].items()
        }
        tuner.chosen_r = data["chosen_r"]
        tuner.greedy_acceptance = bool(data["greedy_acceptance"])
        tuner.eager_expansion = bool(data["eager_expansion"])
        tuner.n_iterations = int(data["n_iterations"])
        tuner.n_restarts = int(data["n_restarts"])
        tuner.n_evaluations = int(data["n_evaluations"])
        tuner.n_batches = int(data["n_batches"])
        tuner.step_log = list(data["step_log"])
        tuner._probe = ConvergenceProbe(space)
        return tuner

    # -- bookkeeping ---------------------------------------------------------------

    def _after_update(self) -> None:
        assert self.simplex is not None
        self.n_iterations += 1
        if self._probe.simplex_collapsed(self.simplex.points()):
            self.phase = ProPhase.PROBE
        else:
            self.phase = ProPhase.REFLECT
