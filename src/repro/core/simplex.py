"""Simplex container and rank-ordering transform geometry (paper Fig. 2).

A simplex here is an ordered multiset of vertices with (possibly stale)
objective estimates.  The three rank-ordering transforms are all affine maps
*around the best vertex* ``v0``:

* reflection:  ``r_j = 2 v0 - v_j``
* expansion:   ``e_j = 3 v0 - 2 v_j``   (reflection pushed twice as far)
* shrink:      ``s_j = (v0 + v_j) / 2``

Note this differs from Nelder–Mead, which transforms the *worst* vertex
through the centroid of the others; rank ordering moves the whole simplex
around the best point, which is what makes the n transforms independent and
hence embarrassingly parallel (§3.2).

The paper's Algorithm 2 listing contains two typos (it writes ``v_k^n``
where the per-vertex ``v_k^j`` is meant in the reflection and expansion
steps); we implement the per-vertex forms, consistent with Algorithm 1 and
the prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Vertex", "Simplex", "reflect", "expand", "shrink", "affine_rank"]


def reflect(v0: np.ndarray, vj: np.ndarray) -> np.ndarray:
    """Reflection of ``vj`` through ``v0``: ``2 v0 - vj``."""
    return 2.0 * np.asarray(v0, dtype=float) - np.asarray(vj, dtype=float)


def expand(v0: np.ndarray, vj: np.ndarray) -> np.ndarray:
    """Expansion of ``vj`` away from ``v0``: ``3 v0 - 2 vj``."""
    return 3.0 * np.asarray(v0, dtype=float) - 2.0 * np.asarray(vj, dtype=float)


def shrink(v0: np.ndarray, vj: np.ndarray) -> np.ndarray:
    """Shrink of ``vj`` toward ``v0``: ``(v0 + vj) / 2``."""
    return 0.5 * (np.asarray(v0, dtype=float) + np.asarray(vj, dtype=float))


def affine_rank(points: list[np.ndarray], tol: float = 1e-9) -> int:
    """Affine rank of a point set — the dimension its simplex spans.

    A simplex on an N-dimensional space is *degenerate* when its affine rank
    is below N; degenerate simplexes are the failure mode of Nelder–Mead the
    paper calls out (§3.1), and this diagnostic lets tests and the tuners
    detect it.
    """
    if not points:
        return 0
    base = np.asarray(points[0], dtype=float)
    diffs = np.array([np.asarray(p, dtype=float) - base for p in points[1:]])
    if diffs.size == 0:
        return 0
    s = np.linalg.svd(diffs, compute_uv=False)
    scale = float(s[0]) if s.size else 0.0
    if scale == 0.0:
        return 0
    return int(np.sum(s > tol * scale))


@dataclass
class Vertex:
    """A simplex vertex: a point and its current objective estimate."""

    point: np.ndarray
    value: float

    def __post_init__(self) -> None:
        self.point = np.asarray(self.point, dtype=float).copy()
        self.value = float(self.value)
        if self.point.ndim != 1:
            raise ValueError(f"vertex point must be 1-D, got shape {self.point.shape}")
        if not np.isfinite(self.value):
            raise ValueError(f"vertex value must be finite, got {self.value}")

    def copy(self) -> "Vertex":
        return Vertex(self.point.copy(), self.value)


@dataclass
class Simplex:
    """An ordered set of evaluated vertices, best (lowest value) first."""

    vertices: list[Vertex] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.vertices) < 2:
            raise ValueError(
                f"a simplex needs at least 2 vertices, got {len(self.vertices)}"
            )
        dims = {v.point.shape for v in self.vertices}
        if len(dims) != 1:
            raise ValueError(f"inconsistent vertex dimensions: {dims}")
        self.order()

    # -- structure ---------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Dimension of the ambient space."""
        return int(self.vertices[0].point.size)

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_moving(self) -> int:
        """n — the number of vertices transformed each iteration (all but v0)."""
        return len(self.vertices) - 1

    def order(self) -> None:
        """Sort vertices by value ascending (stable, hence deterministic)."""
        self.vertices.sort(key=lambda v: v.value)

    @property
    def best(self) -> Vertex:
        """v0 — the vertex with the least objective estimate."""
        return self.vertices[0]

    @property
    def worst(self) -> Vertex:
        return self.vertices[-1]

    def points(self) -> list[np.ndarray]:
        return [v.point.copy() for v in self.vertices]

    def values(self) -> np.ndarray:
        return np.array([v.value for v in self.vertices], dtype=float)

    def is_degenerate(self, ambient_dim: int | None = None, tol: float = 1e-9) -> bool:
        """True when the simplex fails to span the (given) space."""
        dim = self.dimension if ambient_dim is None else ambient_dim
        return affine_rank(self.points(), tol) < dim

    def diameter(self) -> float:
        """Largest pairwise vertex distance — a simplex-collapse measure."""
        pts = self.points()
        best = 0.0
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                best = max(best, float(np.linalg.norm(pts[i] - pts[j])))
        return best

    # -- the three transforms, around the current best vertex ------------------------

    def reflection_points(self) -> list[np.ndarray]:
        """Unprojected reflections of v1..vn through v0."""
        v0 = self.best.point
        return [reflect(v0, v.point) for v in self.vertices[1:]]

    def expansion_points(self) -> list[np.ndarray]:
        """Unprojected expansions of v1..vn away from v0."""
        v0 = self.best.point
        return [expand(v0, v.point) for v in self.vertices[1:]]

    def shrink_points(self) -> list[np.ndarray]:
        """Unprojected shrinks of v1..vn toward v0."""
        v0 = self.best.point
        return [shrink(v0, v.point) for v in self.vertices[1:]]

    def replace_moving(self, new_vertices: list[Vertex]) -> None:
        """Replace v1..vn with *new_vertices*, keep v0, and reorder."""
        if len(new_vertices) != self.n_moving:
            raise ValueError(
                f"expected {self.n_moving} replacement vertices, got {len(new_vertices)}"
            )
        self.vertices = [self.best] + [v.copy() for v in new_vertices]
        self.order()

    def copy(self) -> "Simplex":
        return Simplex([v.copy() for v in self.vertices])
