"""Adaptive sample-count control (the paper's §5.2 future work).

The paper fixes K in advance and notes: "In practice, it is not easy to find
a fixed value for K.  Currently, we are working on optimization algorithms
that update K adaptively."  This module implements such a controller as an
extension, designed around the min operator's semantics:

For the min estimator the quantity that matters is how far the observed
minimum still sits above the noise floor.  We measure, per evaluation batch,
the **relative min-gap** ``g = (median(y) - min(y)) / min(y)`` of each
point's samples (median rather than mean, so one giant spike cannot saturate
the signal).  A large gap means individual samples are still noise-dominated
and the current K under-samples; a tiny gap means extra samples are wasted
time steps.  The controller moves K by one step with hysteresis:

* if the batch-median gap exceeds ``high`` → K ← K + 1 (up to ``k_max``);
* if it falls below ``low``            → K ← K − 1 (down to ``k_min``);
* otherwise K is unchanged.

With K = 1 the gap cannot be computed from a single sample, so the
controller tracks repeated visits: it keeps a short history of estimates of
the incumbent configuration and uses their relative spread instead.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["AdaptiveSamplingController"]


class AdaptiveSamplingController:
    """Hysteresis controller for the per-evaluation sample count K."""

    def __init__(
        self,
        k_initial: int = 1,
        *,
        k_min: int = 1,
        k_max: int = 10,
        low: float = 0.02,
        high: float = 0.10,
        incumbent_window: int = 6,
    ) -> None:
        if not (1 <= k_min <= k_initial <= k_max):
            raise ValueError(
                f"need 1 <= k_min <= k_initial <= k_max, got "
                f"{k_min}, {k_initial}, {k_max}"
            )
        if not (0.0 <= low < high):
            raise ValueError(f"need 0 <= low < high, got low={low}, high={high}")
        if incumbent_window < 2:
            raise ValueError(f"incumbent_window must be >= 2, got {incumbent_window}")
        self.k = int(k_initial)
        self.k_min = int(k_min)
        self.k_max = int(k_max)
        self.low = float(low)
        self.high = float(high)
        self._incumbent_estimates: deque[float] = deque(maxlen=incumbent_window)
        #: history of (gap, K) decisions for diagnostics
        self.history: list[tuple[float, int]] = []

    @property
    def current_k(self) -> int:
        return self.k

    @staticmethod
    def _relative_min_gap(samples: np.ndarray) -> float | None:
        """(median - min) / min for one point's samples; None if undefined."""
        arr = np.asarray(samples, dtype=float).ravel()
        arr = arr[np.isfinite(arr)]
        if arr.size < 2:
            return None
        lo = float(arr.min())
        if lo <= 0:
            return None
        return (float(np.median(arr)) - lo) / lo

    def observe_batch(self, samples: np.ndarray) -> int:
        """Update K from one evaluation batch's (points × K) sample matrix.

        Returns the K to use for the *next* batch.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 2:
            raise ValueError(f"expected (points, K) matrix, got shape {arr.shape}")
        gaps = [g for row in arr if (g := self._relative_min_gap(row)) is not None]
        if gaps:
            gap = float(np.median(gaps))
        else:
            gap = self._incumbent_gap()
            if gap is None:
                self.history.append((np.nan, self.k))
                return self.k
        if gap > self.high and self.k < self.k_max:
            self.k += 1
        elif gap < self.low and self.k > self.k_min:
            self.k -= 1
        self.history.append((gap, self.k))
        return self.k

    def observe_incumbent(self, estimate: float) -> None:
        """Record one estimate of the incumbent configuration.

        Feeds the K=1 fallback: across visits, the spread of single-sample
        estimates of the *same* configuration is pure noise.
        """
        if np.isfinite(estimate):
            self._incumbent_estimates.append(float(estimate))

    def _incumbent_gap(self) -> float | None:
        if len(self._incumbent_estimates) < 2:
            return None
        arr = np.asarray(self._incumbent_estimates, dtype=float)
        return self._relative_min_gap(arr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveSamplingController(k={self.k}, range=[{self.k_min}, {self.k_max}], "
            f"band=[{self.low}, {self.high}])"
        )
