"""The paper's primary contribution: rank-ordering direct search for
online parameter tuning, resilient to heavy-tailed performance variability.

* :mod:`repro.core.simplex` — simplex container and the reflect / expand /
  shrink geometry (paper Fig. 2);
* :mod:`repro.core.initial` — initial simplex construction (§3.2.3, §6.1);
* :mod:`repro.core.stopping` — the 2N-point local-minimum certificate (§3.2.2);
* :mod:`repro.core.sampling` — multi-sample estimators, most importantly the
  min operator (§5);
* :mod:`repro.core.adaptive` — an adaptive-K controller (the paper's stated
  future work, implemented here as an extension);
* :mod:`repro.core.sro` / :mod:`repro.core.pro` — Algorithms 1 and 2;
* :mod:`repro.core.base` — the ask/tell batch-tuner protocol that separates
  search logic from the online evaluation/cost-accounting substrate.
"""

from repro.core.base import BatchTuner, TunerState
from repro.core.simplex import Simplex, Vertex, expand, reflect, shrink
from repro.core.initial import axial_simplex, minimal_simplex
from repro.core.sampling import (
    Estimator,
    MeanEstimator,
    MedianEstimator,
    MinEstimator,
    SamplingPlan,
)
from repro.core.adaptive import AdaptiveSamplingController
from repro.core.ksolver import (
    KPlanner,
    NoiseIdentification,
    identify_noise,
    required_samples,
)
from repro.core.stopping import ConvergenceProbe
from repro.core.sro import SequentialRankOrdering
from repro.core.pro import ParallelRankOrdering

__all__ = [
    "BatchTuner",
    "TunerState",
    "Simplex",
    "Vertex",
    "reflect",
    "expand",
    "shrink",
    "axial_simplex",
    "minimal_simplex",
    "Estimator",
    "MinEstimator",
    "MeanEstimator",
    "MedianEstimator",
    "SamplingPlan",
    "AdaptiveSamplingController",
    "KPlanner",
    "NoiseIdentification",
    "identify_noise",
    "required_samples",
    "ConvergenceProbe",
    "SequentialRankOrdering",
    "ParallelRankOrdering",
]
