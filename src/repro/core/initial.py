"""Initial simplex construction (paper §3.2.3 and §6.1).

Two shapes are studied in the paper:

* the **minimal simplex** — N+1 vertices: the admissible centre ``c`` plus
  one positive axial step per parameter, ``Π(c + b_i e_i)``;
* the **axial (2N) simplex** — both axial directions, ``Π(c ± b_i e_i)``,
  which the paper finds "performs much better" on discrete spaces.

The step sizes are ``b_i = r · (u(i) - l(i)) / 2`` where *r* is the *relative
initial simplex size* swept in Fig. 9; the paper's default recommendation
``b_i = 0.1 (u(i) - l(i))`` (§3.2.3) corresponds to ``r = 0.2``.

On coarse discrete lattices a too-small *r* makes the projection collapse
axial steps back onto the centre — the simplex then cannot span the space,
which is exactly the small-``r`` failure mode discussed in §6.1.  We keep
that behaviour (it is part of what Fig. 9 measures) but expose
:func:`distinct_points` so callers can detect it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.space import ParameterSpace

__all__ = ["axial_simplex", "minimal_simplex", "distinct_points"]

#: the paper's default relative initial-simplex size (§3.2.3 / §6.1).
DEFAULT_RELATIVE_SIZE = 0.2


def _axial_steps(space: ParameterSpace, r: float) -> np.ndarray:
    if not (0.0 < r <= 2.0):
        raise ValueError(f"relative size r must lie in (0, 2], got {r}")
    return 0.5 * r * space.spans()


def axial_simplex(
    space: ParameterSpace,
    r: float = DEFAULT_RELATIVE_SIZE,
    center: Sequence[float] | None = None,
) -> list[np.ndarray]:
    """The 2N-vertex initial simplex ``{Π(c ± b_i e_i)}`` (§3.2.3).

    Parameters
    ----------
    space:
        The admissible region.
    r:
        Relative size: ``b_i = r (u_i - l_i) / 2``.
    center:
        Optional admissible centre; defaults to the region centre ``c``.
    """
    c = space.center() if center is None else space.as_point(center)
    if not space.contains(c):
        raise ValueError(f"simplex centre {c!r} is not admissible")
    b = _axial_steps(space, r)
    points: list[np.ndarray] = []
    for i in range(space.dimension):
        for sign in (+1.0, -1.0):
            raw = c.copy()
            raw[i] = c[i] + sign * b[i]
            points.append(space.project(raw, c))
    return points


def minimal_simplex(
    space: ParameterSpace,
    r: float = DEFAULT_RELATIVE_SIZE,
    center: Sequence[float] | None = None,
) -> list[np.ndarray]:
    """The (N+1)-vertex simplex: centre plus positive axial steps (§6.1)."""
    c = space.center() if center is None else space.as_point(center)
    if not space.contains(c):
        raise ValueError(f"simplex centre {c!r} is not admissible")
    b = _axial_steps(space, r)
    points: list[np.ndarray] = [c.copy()]
    for i in range(space.dimension):
        raw = c.copy()
        raw[i] = c[i] + b[i]
        points.append(space.project(raw, c))
    return points


def distinct_points(points: list[np.ndarray]) -> int:
    """Number of distinct points (detects projection-collapsed simplexes)."""
    seen = {tuple(np.asarray(p, dtype=float)) for p in points}
    return len(seen)
