"""Choosing K from first principles (§5.2, Eq. 22).

The paper: "If we know λ, we can start with a desirable error probability
ε > 0, and compute sufficient number of samples K₀" — where λ is the least
non-zero performance difference between two configurations that the min
operator must resolve.  This module implements that computation, plus the
missing ingredient the paper points at ("in practice, it is not easy to
find a fixed value for K"): **estimating the noise parameters online** from
repeated observations of a fixed configuration.

Closed-form identification under the two-job/Pareto model
---------------------------------------------------------

For observations ``y = f + n`` with ``n ~ Pareto(α, β)`` and β tied to f by
Eq. (17):

* the sample mean converges to ``m = f / (1 - ρ)``       (Eq. 6),
* the sample minimum converges to ``l = f + β = f·(1 + (α-1)ρ/((1-ρ)α))``.

Substituting ``f = m (1 - ρ)`` into the second limit collapses to

.. math::  l = m\\,(1 - ρ/α) \\qquad\\Rightarrow\\qquad
           \\hat ρ = α\\,(1 - l/m), \\qquad \\hat f = m\\,(1 - \\hat ρ),

a two-line identification of the idle throughput and the noise-free cost
from nothing but the running mean and minimum.  (The mean of an α > 1
Pareto is finite, so ``m`` converges — slowly for α < 2, which is why the
estimator reports sample counts.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._util import check_positive, check_probability
from repro.variability.heavytail import hill_estimator
from repro.variability.pareto import ParetoDistribution
from repro.variability.twojob import pareto_beta_for

__all__ = ["required_samples", "NoiseIdentification", "identify_noise", "KPlanner"]


def required_samples(
    *,
    alpha: float,
    rho: float,
    f: float,
    gap: float,
    error: float,
) -> int:
    """Eq. 22: smallest K with P[min-of-K > f + n_min + gap] < error.

    Parameters
    ----------
    alpha, rho:
        Noise law (Pareto shape; idle throughput, pins β via Eq. 17).
    f:
        Representative noise-free cost of the configurations compared.
    gap:
        λ — the smallest performance difference that must be resolved
        (absolute, same units as f).
    error:
        ε — acceptable probability that the min estimate still sits more
        than λ above its floor after K samples.
    """
    check_positive("f", f)
    check_positive("gap", gap)
    if not (0.0 < error < 1.0):
        raise ValueError(f"error must lie in (0, 1), got {error}")
    check_probability("rho", rho)
    if rho == 0.0:
        return 1  # noise-free: one sample is exact
    beta = float(pareto_beta_for(f, alpha, rho))
    return ParetoDistribution(alpha, beta).samples_for_exceedance(gap, error)


@dataclass(frozen=True)
class NoiseIdentification:
    """Result of identifying (ρ, f, β) from repeated observations."""

    alpha: float        #: Pareto shape used (given or Hill-estimated)
    rho: float          #: estimated idle throughput
    f: float            #: estimated noise-free cost
    beta: float         #: implied noise floor (Eq. 17)
    n_samples: int      #: observations used
    alpha_estimated: bool

    def noise_distribution(self) -> ParetoDistribution | None:
        if self.rho == 0.0:
            return None
        return ParetoDistribution(self.alpha, self.beta)


def identify_noise(
    observations: np.ndarray,
    *,
    alpha: float | None = None,
    min_samples: int = 10,
) -> NoiseIdentification:
    """Identify (ρ̂, f̂) from repeated observations of ONE configuration.

    ``alpha`` may be supplied (e.g. the paper's 1.7); otherwise it is
    Hill-estimated from the observations' upper tail, which needs a few
    hundred samples to be trustworthy.
    """
    y = np.asarray(observations, dtype=float).ravel()
    y = y[np.isfinite(y)]
    if y.size < min_samples:
        raise ValueError(
            f"need at least {min_samples} observations, got {y.size}"
        )
    if np.any(y <= 0):
        raise ValueError("observations must be positive times")
    m = float(y.mean())
    l = float(y.min())
    alpha_estimated = alpha is None
    if alpha is None:
        # Observations are a *shifted* Pareto (y = f + n), whose Hill
        # estimate converges to the noise index only deep in the tail; use
        # the top ~0.5% (still >= 5 points) to limit the shift bias.
        k = max(5, y.size // 200)
        alpha = hill_estimator(y, k=min(k, y.size - 1))
    check_positive("alpha", alpha)
    # rho-hat = alpha (1 - l/m), clipped into the model's valid range.
    rho = float(np.clip(alpha * (1.0 - l / m), 0.0, 0.95))
    f = m * (1.0 - rho)
    beta = float(pareto_beta_for(f, alpha, rho)) if (rho > 0 and alpha > 1) else 0.0
    return NoiseIdentification(
        alpha=float(alpha),
        rho=rho,
        f=float(f),
        beta=beta,
        n_samples=int(y.size),
        alpha_estimated=alpha_estimated,
    )


class KPlanner:
    """End-to-end §5.2 planner: observations → (ρ̂, f̂) → K₀ via Eq. 22.

    ``rel_gap`` is λ expressed relative to the noise-free cost (e.g. 0.02
    means the tuner must resolve 2% performance differences) and ``error``
    the acceptable per-comparison mistake probability ε.
    """

    def __init__(
        self,
        *,
        rel_gap: float = 0.05,
        error: float = 0.05,
        alpha: float | None = 1.7,
        k_max: int = 50,
    ) -> None:
        self.rel_gap = check_positive("rel_gap", rel_gap)
        if not (0.0 < error < 1.0):
            raise ValueError(f"error must lie in (0, 1), got {error}")
        self.error = float(error)
        self.alpha = alpha
        if k_max < 1:
            raise ValueError(f"k_max must be >= 1, got {k_max}")
        self.k_max = int(k_max)

    def plan(self, observations: np.ndarray) -> tuple[int, NoiseIdentification]:
        """Identify the noise and return (K₀, identification)."""
        ident = identify_noise(observations, alpha=self.alpha)
        if ident.rho == 0.0:
            return 1, ident
        k = required_samples(
            alpha=ident.alpha,
            rho=ident.rho,
            f=ident.f,
            gap=self.rel_gap * ident.f,
            error=self.error,
        )
        return min(k, self.k_max), ident
