"""Multi-sample estimators for noisy performance measurements (paper §5).

Under heavy-tailed variability, the sample *average* need not converge (a
Pareto(α<2) noise term has infinite variance; for α<1 even the mean is
infinite).  The paper's estimator of choice is the **minimum**: for
``y_k = f(v) + n_k(v)``,

.. math:: L_y^{(K)}(v) = \\min_k y_k = f(v) + \\min_k n_k(v)

converges (in probability, geometrically fast — Eq. 20) to the deterministic
floor ``f(v) + n_min(v)``.  When ``n_min`` is an increasing function of
``f`` — which the two-job model's Eq. (17) guarantees — comparing min
estimates orders configurations exactly like comparing true costs (§5.1).

The mean and median estimators are provided for the ablation studies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Estimator",
    "MinEstimator",
    "MeanEstimator",
    "MedianEstimator",
    "PercentileEstimator",
    "SamplingPlan",
]


class Estimator(ABC):
    """Reduces K samples of one configuration to a single estimate."""

    name: str = "estimator"

    @abstractmethod
    def combine(self, samples: np.ndarray) -> float:
        """Combine a 1-D sample array into one estimate."""

    def combine_batch(self, samples: np.ndarray) -> np.ndarray:
        """Combine each row of a (points × K) sample matrix.

        Subclasses override with a single axis-1 reduction; overrides must
        agree with :meth:`combine` row-by-row (the session relies on that
        to take the vectorized path without changing results).
        """
        return np.array(
            [self.combine(row) for row in self._matrix(samples)], dtype=float
        )

    @staticmethod
    def _matrix(samples: np.ndarray) -> np.ndarray:
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D (points, K) matrix, got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise ValueError("samples must be finite")
        return arr

    @staticmethod
    def _validate(samples: np.ndarray) -> np.ndarray:
        arr = np.asarray(samples, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot combine an empty sample set")
        if not np.all(np.isfinite(arr)):
            raise ValueError("samples must be finite")
        return arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class MinEstimator(Estimator):
    """The paper's min operator L_y^(K) (§5.1) — heavy-tail resilient."""

    name = "min"

    def combine(self, samples: np.ndarray) -> float:
        return float(self._validate(samples).min())

    def combine_batch(self, samples: np.ndarray) -> np.ndarray:
        return self._matrix(samples).min(axis=1)


class MeanEstimator(Estimator):
    """The conventional average — fails under infinite variance (§5.1)."""

    name = "mean"

    def combine(self, samples: np.ndarray) -> float:
        return float(self._validate(samples).mean())

    def combine_batch(self, samples: np.ndarray) -> np.ndarray:
        return self._matrix(samples).mean(axis=1)


class MedianEstimator(Estimator):
    """Robust middle ground: bounded influence, but a biased locator of f."""

    name = "median"

    def combine(self, samples: np.ndarray) -> float:
        return float(np.median(self._validate(samples)))

    def combine_batch(self, samples: np.ndarray) -> np.ndarray:
        return np.median(self._matrix(samples), axis=1)


class PercentileEstimator(Estimator):
    """Generalized order-statistic estimator; q=0 recovers the minimum."""

    def __init__(self, q: float) -> None:
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile q must lie in [0, 100], got {q}")
        self.q = float(q)
        self.name = f"p{q:g}"

    def combine(self, samples: np.ndarray) -> float:
        return float(np.percentile(self._validate(samples), self.q))

    def combine_batch(self, samples: np.ndarray) -> np.ndarray:
        return np.percentile(self._matrix(samples), self.q, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PercentileEstimator(q={self.q})"


@dataclass(frozen=True)
class SamplingPlan:
    """How a configuration's performance is estimated: K samples + reducer.

    ``k`` is the fixed sample count of §5.2 ("instead of evaluating f(v)
    only once, we evaluate it K times"); each sample occupies one application
    time step when taken sequentially, which is how the session charges it.
    """

    k: int = 1
    estimator: Estimator = MinEstimator()

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"sample count k must be >= 1, got {self.k}")

    def combine(self, samples: np.ndarray) -> float:
        return self.estimator.combine(samples)

    def combine_batch(self, samples: np.ndarray) -> np.ndarray:
        return self.estimator.combine_batch(samples)
