"""The ask/tell batch-tuner protocol.

Search algorithms in :mod:`repro` never evaluate the objective themselves;
they *ask* for a batch of candidate configurations and are later *told* the
performance estimates.  The evaluation substrate
(:mod:`repro.harmony.session`) owns everything the paper's online metric
depends on: mapping batches onto P processors, charging one application time
step per wave (``T_k = max`` barrier semantics), taking K samples per point,
and reducing them with the chosen estimator.

This split keeps Algorithm 2 a pure search loop and makes ``Total_Time``
unfakeable — a tuner cannot evaluate more points than it pays for.

Contract:

* ``ask()`` returns the next batch of points (possibly a single point for
  sequential algorithms, or ``[]`` once converged);
* ``tell(values)`` delivers estimates in ask-order; calling ``ask`` twice
  without an interleaved ``tell`` is an error, as is a mismatched length;
* ``best_point`` / ``best_value`` expose the incumbent at all times after
  initialization (the session exploits the incumbent once the tuner has
  converged or between batches).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.obs.trace import emit as _obs_emit
from repro.space import ParameterSpace

__all__ = ["TunerState", "BatchTuner"]


class TunerState(enum.Enum):
    """Coarse lifecycle state of a tuner."""

    RUNNING = "running"
    CONVERGED = "converged"


class BatchTuner(ABC):
    """Base class implementing the ask/tell bookkeeping."""

    def __init__(self, space: ParameterSpace) -> None:
        self.space = space
        self.state = TunerState.RUNNING
        self._pending: list[np.ndarray] | None = None
        #: total number of objective estimates consumed
        self.n_evaluations = 0
        #: number of ask/tell round trips completed
        self.n_batches = 0
        #: human-readable log of accepted step kinds (diagnostics/ablation)
        self.step_log: list[str] = []

    # -- the public protocol -------------------------------------------------

    def ask(self) -> list[np.ndarray]:
        """Next batch of candidate points (empty once converged)."""
        if self._pending is not None:
            raise RuntimeError(
                "ask() called with a batch still pending; call tell() first"
            )
        if self.converged:
            return []
        batch = [np.asarray(p, dtype=float).copy() for p in self._ask()]
        if batch:
            ok = self.space.contains_batch(batch)
            if not np.all(ok):
                bad = batch[int(np.argmax(~ok))]
                raise RuntimeError(
                    f"tuner proposed inadmissible point {bad!r} — projection bug"
                )
            self._pending = batch
        return [p.copy() for p in batch]

    def tell(self, values: Sequence[float]) -> None:
        """Deliver estimates for the last asked batch, in ask-order."""
        vals = [float(v) for v in values]
        if self._pending is None:
            if vals:
                raise RuntimeError("tell() called with no pending batch")
            return
        if len(vals) != len(self._pending):
            raise ValueError(
                f"expected {len(self._pending)} values, got {len(vals)}"
            )
        if not all(np.isfinite(v) for v in vals):
            raise ValueError(f"estimates must be finite, got {vals}")
        batch = self._pending
        self._pending = None
        self.n_evaluations += len(vals)
        self.n_batches += 1
        self._tell(batch, vals)

    @property
    def converged(self) -> bool:
        """True once a local-minimum certificate has been obtained."""
        return self.state is TunerState.CONVERGED

    @property
    def has_pending(self) -> bool:
        return self._pending is not None

    @property
    def max_batch_size(self) -> int | None:
        """Upper bound on ``len(ask())`` across the tuner's lifetime.

        ``None`` means unknown; evaluation substrates use this to size
        reusable sample buffers, so a returned bound must never be exceeded.
        """
        return None

    # -- to implement -----------------------------------------------------------

    @abstractmethod
    def _ask(self) -> list[np.ndarray]:
        """Produce the next batch (admissible points)."""

    @abstractmethod
    def _tell(self, batch: list[np.ndarray], values: list[float]) -> None:
        """Consume estimates for *batch*."""

    @property
    @abstractmethod
    def best_point(self) -> np.ndarray:
        """Incumbent configuration (defined once initialization completed)."""

    @property
    @abstractmethod
    def best_value(self) -> float:
        """Estimate at the incumbent."""

    # -- helpers -------------------------------------------------------------------

    def _mark_converged(self, reason: str) -> None:
        self.state = TunerState.CONVERGED
        self.step_log.append(f"converged:{reason}")
        _obs_emit(
            "tuner.converged", reason=reason, n_evaluations=self.n_evaluations
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(state={self.state.value}, "
            f"evals={self.n_evaluations})"
        )
