"""Convergence checking: the 2N-point local-minimum certificate (§3.2.2).

When every simplex vertex has collapsed onto one configuration (exactly, for
discrete parameters; within tolerance, for continuous ones), the algorithm
probes the up-to-2N axial neighbours of the candidate ``v0``:

* discrete coordinate → the adjacent admissible values above and below;
* continuous coordinate → ± a small ``probe_step``;
* directions blocked by a boundary are skipped (the paper sets ``l_i``/``u_i``
  to zero there).

If no probe strictly outperforms ``v0``, it is certified a local minimum and
the search stops; otherwise the probes (plus ``v0``) form the restart
simplex and the search continues — this is what lets PRO escape a collapsed
simplex, including the degenerate all-equal simplexes a too-small initial
size produces on coarse lattices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.space import ParameterSpace

__all__ = ["ConvergenceProbe"]


class ConvergenceProbe:
    """Builds probe batches and renders local-minimum verdicts."""

    def __init__(self, space: ParameterSpace) -> None:
        self.space = space

    def simplex_collapsed(self, points: Sequence[np.ndarray]) -> bool:
        """True when all simplex vertices coincide (the check trigger)."""
        return self.space.coincident(points)

    def probe_points(self, v0: np.ndarray) -> list[np.ndarray]:
        """The certificate batch around *v0* (up to 2N points)."""
        return self.space.probe_points(v0)

    @staticmethod
    def is_local_minimum(v0_value: float, probe_values: Sequence[float]) -> bool:
        """True when no probe strictly outperforms the candidate."""
        if len(probe_values) == 0:
            return True
        return float(min(probe_values)) >= float(v0_value)
