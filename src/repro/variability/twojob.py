"""The two-priority-queue model of performance variability (paper §4.1).

The computing node is modelled as a single server under a strict-priority
scheduler.  All variability sources (daemons, OS house-keeping, transient
disruptions) are the *first-priority* job class; the tunable application is
the *second-priority* class and only receives service when no first-priority
work is present.

With ρ the *idle system throughput* (the fraction of capacity the
first-priority class consumes), the observed application time is

.. math::  y = f(v) + n(v)

where ``f(v)`` is the noise-free time and ``n(v)`` the time stolen by
first-priority work while the application was in the system, with

.. math::

    E[y] = \\frac{f(v)}{1 - \\rho}, \\qquad
    E[n(v)] = \\frac{\\rho}{1 - \\rho} f(v).            \\tag{6, 7}

When n(v) is Pareto(α, β) with α > 1, matching its mean to Eq. (7) pins the
scale to

.. math::  \\beta = \\frac{(\\alpha - 1)\\rho}{(1 - \\rho)\\alpha} f(v),   \\tag{17}

i.e. the minimum attainable noise is a *linear, increasing function of
f(v)* — the property the min-operator comparison argument (§5.1) requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive, check_probability
from repro.variability.pareto import ParetoDistribution

__all__ = ["TwoJobModel", "pareto_beta_for"]


def pareto_beta_for(f: float | np.ndarray, alpha: float, rho: float) -> float | np.ndarray:
    """Eq. (17): the Pareto scale β that matches E[n] = ρ/(1-ρ)·f.

    Vectorized over *f*.  Requires α > 1 (finite mean) and 0 <= ρ < 1.
    ρ = 0 yields β = 0, i.e. degenerate zero noise.
    """
    check_positive("alpha", alpha)
    if alpha <= 1.0:
        raise ValueError(f"Eq. (17) requires alpha > 1 (finite mean), got {alpha}")
    check_probability("rho", rho)
    return (alpha - 1.0) * rho / ((1.0 - rho) * alpha) * np.asarray(f, dtype=float)


@dataclass(frozen=True)
class TwoJobModel:
    """Closed-form algebra of the two-priority-queue model for a given ρ."""

    rho: float

    def __post_init__(self) -> None:
        check_probability("rho", self.rho)

    @property
    def slowdown(self) -> float:
        """Expected multiplicative slowdown 1/(1-ρ) of the observed time."""
        return 1.0 / (1.0 - self.rho)

    def expected_observed(self, f: float | np.ndarray) -> float | np.ndarray:
        """E[y] = f/(1-ρ) (Eq. 6)."""
        return np.asarray(f, dtype=float) / (1.0 - self.rho)

    def expected_noise(self, f: float | np.ndarray) -> float | np.ndarray:
        """E[n(v)] = ρ/(1-ρ)·f (Eq. 7)."""
        return self.rho / (1.0 - self.rho) * np.asarray(f, dtype=float)

    def noise_distribution(self, f: float, alpha: float) -> ParetoDistribution | None:
        """The Pareto(α, β(f)) noise law of Eq. (17); None when ρ = 0."""
        if self.rho == 0.0:
            return None
        beta = float(pareto_beta_for(f, alpha, self.rho))
        return ParetoDistribution(alpha, beta)

    def n_min(self, f: float | np.ndarray, alpha: float) -> float | np.ndarray:
        """The smallest attainable noise n_min(v) = β(f) under Eq. (17).

        This is the deterministic floor the min operator converges to
        (Eq. 14/15): min-of-K estimates approach ``f + n_min(f)`` = G(f),
        a strictly increasing function of f, so orderings are preserved.
        """
        if self.rho == 0.0:
            return np.zeros_like(np.asarray(f, dtype=float)) if np.ndim(f) else 0.0
        return pareto_beta_for(f, alpha, self.rho)

    def g(self, f: float | np.ndarray, alpha: float) -> float | np.ndarray:
        """G(f) = f + n_min(f): the min-operator limit as K → ∞ (Eq. 15)."""
        return np.asarray(f, dtype=float) + self.n_min(f, alpha)

    def g_inverse(self, l: float | np.ndarray, alpha: float) -> float | np.ndarray:
        """Invert G to recover f from a converged min estimate (Eq. 15)."""
        l = np.asarray(l, dtype=float)
        if self.rho == 0.0:
            return l
        slope = 1.0 + float(pareto_beta_for(1.0, alpha, self.rho))
        return l / slope

    def normalized_total_time(self, total_time: float | np.ndarray) -> float | np.ndarray:
        """NTT = (1-ρ)·Total_Time (Eq. 23) — comparable across ρ values."""
        return (1.0 - self.rho) * np.asarray(total_time, dtype=float)
