"""The Pareto distribution and the min-of-K closure property.

The paper (§4.2, §5.1) uses the Pareto distribution as the canonical
heavy-tailed model:

.. math::

    F_X(x) = 1 - (\\beta/x)^{\\alpha}, \\qquad x \\ge \\beta,

with β the smallest attainable value.  For ``1 < α < 2`` the mean is finite
but the variance infinite; for ``0 < α < 1`` both are infinite.  The key
analytic fact (Eq. 19) is that the minimum of K i.i.d. Pareto(α, β) samples
is again Pareto with shape ``K·α`` and the same β — so for ``K > 2/α`` the
minimum has finite mean *and* variance even when individual samples have
neither.  This is exactly why the min operator is a usable estimator where
the average is not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._util import as_generator, check_positive

__all__ = ["ParetoDistribution"]


@dataclass(frozen=True)
class ParetoDistribution:
    """Pareto distribution with shape ``alpha`` and scale (minimum) ``beta``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        check_positive("beta", self.beta)

    # -- analytic properties -------------------------------------------------

    @property
    def mean(self) -> float:
        """E[X] = αβ/(α-1) for α > 1, else +inf (Eq. 16)."""
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.beta / (self.alpha - 1.0)

    @property
    def variance(self) -> float:
        """Var[X], finite only for α > 2."""
        a, b = self.alpha, self.beta
        if a <= 2.0:
            return math.inf
        return (b * b * a) / ((a - 1.0) ** 2 * (a - 2.0))

    @property
    def is_heavy_tailed(self) -> bool:
        """Heavy tail in the paper's sense (Eq. 8): 0 < α < 2."""
        return self.alpha < 2.0

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        """Density ``α β^α x^-(α+1)`` on [β, ∞)."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        mask = x >= self.beta
        out[mask] = self.alpha * self.beta**self.alpha * x[mask] ** -(self.alpha + 1.0)
        return out

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        """F(x) = 1 - (β/x)^α (Eq. 9)."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        mask = x >= self.beta
        out[mask] = 1.0 - (self.beta / x[mask]) ** self.alpha
        return out

    def ccdf(self, x: np.ndarray | float) -> np.ndarray:
        """Q(x) = P[X > x] = (β/x)^α for x ≥ β, else 1 (Eq. 10)."""
        x = np.asarray(x, dtype=float)
        out = np.ones_like(x)
        mask = x >= self.beta
        out[mask] = (self.beta / x[mask]) ** self.alpha
        return out

    def quantile(self, q: np.ndarray | float) -> np.ndarray:
        """Inverse cdf: x such that F(x) = q."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q >= 1.0)):
            raise ValueError("quantile levels must lie in [0, 1)")
        return self.beta * (1.0 - q) ** (-1.0 / self.alpha)

    # -- the min-of-K closure -----------------------------------------------

    def minimum_of(self, k: int) -> "ParetoDistribution":
        """Distribution of ``min(X_1, ..., X_k)``: Pareto(k·α, β) (Eq. 19)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return ParetoDistribution(self.alpha * k, self.beta)

    def min_exceedance(self, k: int, epsilon: float) -> float:
        """P[min of k samples > β + ε] = (β/(β+ε))^{kα} (Eq. 20)."""
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        return float((self.beta / (self.beta + epsilon)) ** (self.alpha * k))

    def samples_for_exceedance(self, epsilon: float, prob: float) -> int:
        """Smallest K with P[min of K samples > β + ε] < *prob* (Eq. 22)."""
        check_positive("epsilon", epsilon)
        if not (0.0 < prob < 1.0):
            raise ValueError(f"prob must lie in (0, 1), got {prob}")
        per_sample = self.min_exceedance(1, epsilon)
        if per_sample <= 0.0:
            return 1
        k = math.log(prob) / math.log(per_sample)
        return max(1, int(math.ceil(k)))

    # -- sampling -------------------------------------------------------------

    def sample(
        self,
        rng: int | np.random.Generator | None = None,
        size: int | tuple[int, ...] | None = None,
    ) -> np.ndarray | float:
        """Draw samples via inverse-cdf on uniform variates."""
        gen = as_generator(rng)
        u = gen.random(size)
        x = self.beta * (1.0 - u) ** (-1.0 / self.alpha)
        if size is None:
            return float(x)
        return x

    @classmethod
    def from_mean(cls, alpha: float, mean: float) -> "ParetoDistribution":
        """Construct from a target mean (requires α > 1)."""
        check_positive("alpha", alpha)
        check_positive("mean", mean)
        if alpha <= 1.0:
            raise ValueError("mean parameterization requires alpha > 1")
        return cls(alpha, mean * (alpha - 1.0) / alpha)
