"""Stochastic performance-variability substrate (paper §4 and §5).

Three layers:

* :mod:`repro.variability.pareto` — the Pareto distribution and the closure
  property the paper's min-operator analysis rests on (the minimum of K
  Pareto(α, β) samples is Pareto(Kα, β), Eq. 19).
* :mod:`repro.variability.twojob` — the two-priority-queue algebra linking the
  idle throughput ρ to the expected observed time (Eqs. 6, 7, 17).
* :mod:`repro.variability.models` — pluggable noise models used by the
  evaluators, all parameterized by ρ so Normalized Total Time is well defined.
* :mod:`repro.variability.heavytail` — empirical heavy-tail diagnostics used
  to reproduce Figures 4–7 (pdf, 1-cdf, log-log tail fits, Hill estimator).
"""

from repro.variability.pareto import ParetoDistribution
from repro.variability.twojob import TwoJobModel, pareto_beta_for
from repro.variability.models import (
    ExponentialNoise,
    GaussianNoise,
    NoiseModel,
    NoNoise,
    ParetoNoise,
    SpikeMixtureNoise,
    TruncatedParetoNoise,
)
from repro.variability.regimes import MarkovModulatedNoise
from repro.variability.fitting import FitResult, classify_excess, classify_tail, fit_candidates
from repro.variability.heavytail import (
    TailReport,
    empirical_ccdf,
    empirical_pdf,
    hill_estimator,
    loglog_tail_fit,
    tail_report,
    truncate,
)

__all__ = [
    "ParetoDistribution",
    "TwoJobModel",
    "pareto_beta_for",
    "NoiseModel",
    "NoNoise",
    "ParetoNoise",
    "TruncatedParetoNoise",
    "GaussianNoise",
    "ExponentialNoise",
    "SpikeMixtureNoise",
    "MarkovModulatedNoise",
    "TailReport",
    "empirical_pdf",
    "empirical_ccdf",
    "loglog_tail_fit",
    "hill_estimator",
    "tail_report",
    "truncate",
    "FitResult",
    "fit_candidates",
    "classify_excess",
    "classify_tail",
]
