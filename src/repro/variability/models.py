"""Pluggable noise models for the evaluation substrate.

Every model maps a noise-free cost ``f`` to an *observed* cost
``y = f + n`` with ``n >= 0``, and carries its idle throughput ``rho`` so
that Normalized Total Time (Eq. 23) is always computable.  Models whose mean
noise follows the two-job model satisfy ``E[y] = f/(1-ρ)`` (Eq. 6).

The models are deliberately conditional on ``f``: under Eq. (17) the Pareto
scale β grows linearly with f, so expensive configurations are *also* the
noisiest — the coupling that defeats naive averaging and that the min
operator is designed for.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._util import as_generator, check_nonnegative, check_positive, check_probability
from repro.variability.pareto import ParetoDistribution
from repro.variability.twojob import pareto_beta_for

__all__ = [
    "NoiseModel",
    "NoNoise",
    "ParetoNoise",
    "TruncatedParetoNoise",
    "GaussianNoise",
    "ExponentialNoise",
    "SpikeMixtureNoise",
]


class NoiseModel(ABC):
    """Maps noise-free costs to observed costs (y = f + n, n >= 0)."""

    #: idle system throughput ρ consumed by the variability source.
    rho: float = 0.0

    @abstractmethod
    def sample_noise(
        self, f: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one noise value n(v) >= 0 for each noise-free cost in *f*."""

    def observe(
        self, f: float, rng: int | np.random.Generator | None = None
    ) -> float:
        """One observed cost y = f + n for a scalar noise-free cost."""
        gen = as_generator(rng)
        arr = np.asarray([float(f)], dtype=float)
        return float(arr[0] + self.sample_noise(arr, gen)[0])

    def observe_batch(
        self,
        f: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Observed costs for a batch of noise-free costs (vectorized)."""
        gen = as_generator(rng)
        arr = np.asarray(f, dtype=float)
        flat = arr.ravel()
        out = flat + self.sample_noise(flat, gen)
        return out.reshape(arr.shape)

    def expected_observed(self, f: float | np.ndarray) -> float | np.ndarray:
        """E[y] under this model; default is the two-job Eq. (6)."""
        return np.asarray(f, dtype=float) / (1.0 - self.rho)

    def n_min(self, f: float | np.ndarray) -> float | np.ndarray:
        """Smallest attainable noise for cost f (the min-operator floor)."""
        return np.zeros_like(np.asarray(f, dtype=float))


class NoNoise(NoiseModel):
    """Perfect measurements: y = f.  ρ = 0."""

    rho = 0.0

    def sample_noise(self, f: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.zeros_like(f)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NoNoise()"


class ParetoNoise(NoiseModel):
    """The paper's §6.2 noise: n(v) ~ Pareto(α, β(f)) with β from Eq. (17).

    Default α = 1.7 as in the paper — heavy-tailed with finite mean and
    infinite variance.  ρ = 0 degenerates to NoNoise behaviour.
    """

    def __init__(self, rho: float, alpha: float = 1.7) -> None:
        self.rho = check_probability("rho", rho)
        self.alpha = check_positive("alpha", alpha)
        if alpha <= 1.0:
            raise ValueError(
                "ParetoNoise requires alpha > 1 so Eq. (17) has a finite-mean match; "
                f"got alpha={alpha}"
            )
        # Constants of Eq. (17), hoisted out of the per-wave hot path; the
        # expressions match pareto_beta_for / the pow exponent exactly, so
        # samples are unchanged bit for bit.
        self._beta_coeff = (alpha - 1.0) * rho / ((1.0 - rho) * alpha)
        self._neg_inv_alpha = -1.0 / alpha

    def _beta(self, f: np.ndarray) -> np.ndarray:
        return self._beta_coeff * np.asarray(f, dtype=float)

    def sample_noise(self, f: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.rho == 0.0:
            return np.zeros_like(f)
        beta = self._beta(f)
        u = rng.random(f.shape)
        return beta * (1.0 - u) ** self._neg_inv_alpha

    def n_min(self, f: float | np.ndarray) -> float | np.ndarray:
        if self.rho == 0.0:
            return np.zeros_like(np.asarray(f, dtype=float))
        return pareto_beta_for(f, self.alpha, self.rho)

    def distribution_for(self, f: float) -> ParetoDistribution | None:
        """The noise law at a specific cost level, or None when ρ = 0."""
        if self.rho == 0.0:
            return None
        return ParetoDistribution(self.alpha, float(self._beta(np.asarray(f))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoNoise(rho={self.rho}, alpha={self.alpha})"


class TruncatedParetoNoise(ParetoNoise):
    """Pareto noise capped at ``cap_factor × f`` — a light(er)-tailed control.

    Truncation restores finite variance, so this model is the natural foil
    for ablations: the average operator works here, and the min operator
    should not lose much.  The mean no longer exactly matches Eq. (7).
    """

    def __init__(self, rho: float, alpha: float = 1.7, cap_factor: float = 5.0) -> None:
        super().__init__(rho, alpha)
        self.cap_factor = check_positive("cap_factor", cap_factor)

    def sample_noise(self, f: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raw = super().sample_noise(f, rng)
        return np.minimum(raw, self.cap_factor * f)

    def expected_observed(self, f: float | np.ndarray) -> float | np.ndarray:
        raise NotImplementedError(
            "truncated Pareto noise has no simple closed-form mean; "
            "estimate it empirically"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TruncatedParetoNoise(rho={self.rho}, alpha={self.alpha}, "
            f"cap_factor={self.cap_factor})"
        )


class GaussianNoise(NoiseModel):
    """Light-tailed control: n ~ max(0, Normal(μ(f), σ(f))).

    The mean is matched to the two-job model (μ = ρ/(1-ρ)·f) and the
    standard deviation is ``cv × μ``.  Under this model averaging is optimal
    and the min operator pays a small bias — the other half of the
    estimator ablation.
    """

    def __init__(self, rho: float, cv: float = 0.25) -> None:
        self.rho = check_probability("rho", rho)
        self.cv = check_nonnegative("cv", cv)

    def sample_noise(self, f: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.rho == 0.0:
            return np.zeros_like(f)
        mu = self.rho / (1.0 - self.rho) * f
        sigma = self.cv * mu
        return np.maximum(0.0, rng.normal(mu, sigma))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GaussianNoise(rho={self.rho}, cv={self.cv})"


class ExponentialNoise(NoiseModel):
    """Memoryless control: n ~ Exp(mean = ρ/(1-ρ)·f).

    Matches Eq. (7) exactly; light-tailed (all moments finite); its minimum
    floor n_min is 0 rather than β > 0.
    """

    def __init__(self, rho: float) -> None:
        self.rho = check_probability("rho", rho)

    def sample_noise(self, f: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.rho == 0.0:
            return np.zeros_like(f)
        mean = self.rho / (1.0 - self.rho) * f
        return rng.exponential(mean)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialNoise(rho={self.rho})"


class SpikeMixtureNoise(NoiseModel):
    """Two-population spike model matching the GS2 trace morphology (Fig. 3).

    The paper's traces show *two distinct spike types*: frequent small spikes
    and rare big spikes, both with heavy-tailed magnitude.  Each iteration:

    * with probability ``p_small`` add a small spike ~ Pareto(α_small, β_small·f);
    * with probability ``p_big`` add a big spike ~ Pareto(α_big, β_big·f);
    * always add a light Gaussian jitter of scale ``jitter × f``.

    ``rho`` reports the resulting mean capacity share for NTT bookkeeping
    (computed from the mixture means).
    """

    def __init__(
        self,
        *,
        p_small: float = 0.10,
        alpha_small: float = 1.5,
        beta_small: float = 0.05,
        p_big: float = 0.01,
        alpha_big: float = 1.2,
        beta_big: float = 1.0,
        jitter: float = 0.01,
    ) -> None:
        self.p_small = check_probability("p_small", p_small)
        self.p_big = check_probability("p_big", p_big)
        self.alpha_small = check_positive("alpha_small", alpha_small)
        self.alpha_big = check_positive("alpha_big", alpha_big)
        self.beta_small = check_positive("beta_small", beta_small)
        self.beta_big = check_positive("beta_big", beta_big)
        self.jitter = check_nonnegative("jitter", jitter)
        if self.alpha_small <= 1.0 or self.alpha_big <= 1.0:
            raise ValueError("spike shapes must exceed 1 so mean load is finite")
        mean_n_over_f = (
            self.p_small * self.beta_small * self.alpha_small / (self.alpha_small - 1.0)
            + self.p_big * self.beta_big * self.alpha_big / (self.alpha_big - 1.0)
        )
        # E[y] = f (1 + m)  =>  1/(1-rho) = 1 + m.
        self.rho = mean_n_over_f / (1.0 + mean_n_over_f)

    def sample_noise(self, f: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = np.abs(rng.normal(0.0, self.jitter, f.shape)) * f
        small_hit = rng.random(f.shape) < self.p_small
        big_hit = rng.random(f.shape) < self.p_big
        if np.any(small_hit):
            u = rng.random(int(small_hit.sum()))
            n[small_hit] += (
                self.beta_small * f[small_hit] * (1.0 - u) ** (-1.0 / self.alpha_small)
            )
        if np.any(big_hit):
            u = rng.random(int(big_hit.sum()))
            n[big_hit] += (
                self.beta_big * f[big_hit] * (1.0 - u) ** (-1.0 / self.alpha_big)
            )
        return n

    def expected_observed(self, f: float | np.ndarray) -> float | np.ndarray:
        return np.asarray(f, dtype=float) / (1.0 - self.rho)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpikeMixtureNoise(p_small={self.p_small}, p_big={self.p_big}, "
            f"rho={self.rho:.4f})"
        )
