"""Fitting candidate distributions to measured iteration times (§4.2).

The paper asks "it is important to figure out if the performance
variability distribution is heavy tail" and answers with graphical
diagnostics (Figs. 4–7).  This module adds the quantitative companion:
maximum-likelihood fits of candidate families to the *excess* times
(observed minus the baseline), compared by AIC, so a trace can be
classified as Pareto-like (heavy) vs exponential/lognormal/Weibull-like
(light or moderate) with one call.

All likelihoods are for strictly positive samples; callers subtract the
baseline (e.g. the sample minimum = the noise-free cost estimate) first —
:func:`classify_excess` does this for you.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["FitResult", "fit_candidates", "classify_excess", "classify_tail"]

_EPS = 1e-12


@dataclass(frozen=True)
class FitResult:
    """One family's ML fit to a sample."""

    family: str
    params: dict[str, float]
    log_likelihood: float
    aic: float
    n: int

    @property
    def heavy_tailed(self) -> bool:
        """Heavy in the paper's Eq. 8 sense: a hyperbolic tail with α < 2.

        Pareto and Lomax (shifted Pareto / Pareto-II) qualify when their
        shape is below 2; the other families are light- or moderate-tailed
        by construction."""
        return self.family in ("pareto", "lomax") and self.params["alpha"] < 2.0


def _clean_positive(data: np.ndarray) -> np.ndarray:
    arr = np.asarray(data, dtype=float).ravel()
    arr = arr[np.isfinite(arr)]
    arr = arr[arr > 0]
    if arr.size < 10:
        raise ValueError(f"need at least 10 positive samples, got {arr.size}")
    return arr


def _fit_pareto(x: np.ndarray) -> FitResult:
    """Closed-form MLE: β̂ = min(x), α̂ = n / Σ ln(x/β̂)."""
    beta = float(x.min())
    logs = np.log(x / beta)
    s = float(logs.sum())
    n = x.size
    alpha = n / max(s, _EPS)
    ll = n * math.log(alpha) + n * alpha * math.log(beta) - (alpha + 1.0) * float(
        np.log(x).sum()
    )
    return FitResult(
        family="pareto",
        params={"alpha": alpha, "beta": beta},
        log_likelihood=ll,
        aic=2 * 2 - 2 * ll,
        n=n,
    )


def _fit_exponential(x: np.ndarray) -> FitResult:
    mean = float(x.mean())
    n = x.size
    ll = -n * math.log(mean) - n  # Σ(-ln μ - x/μ) with μ̂ = x̄
    return FitResult(
        family="exponential",
        params={"mean": mean},
        log_likelihood=ll,
        aic=2 * 1 - 2 * ll,
        n=n,
    )


def _fit_lognormal(x: np.ndarray) -> FitResult:
    logs = np.log(x)
    mu = float(logs.mean())
    sigma = float(logs.std()) or _EPS
    n = x.size
    ll = float(stats.lognorm(s=sigma, scale=math.exp(mu)).logpdf(x).sum())
    return FitResult(
        family="lognormal",
        params={"mu": mu, "sigma": sigma},
        log_likelihood=ll,
        aic=2 * 2 - 2 * ll,
        n=n,
    )


def _fit_weibull(x: np.ndarray) -> FitResult:
    shape, _, scale = stats.weibull_min.fit(x, floc=0.0)
    n = x.size
    ll = float(stats.weibull_min(c=shape, scale=scale).logpdf(x).sum())
    return FitResult(
        family="weibull",
        params={"shape": float(shape), "scale": float(scale)},
        log_likelihood=ll,
        aic=2 * 2 - 2 * ll,
        n=n,
    )


def _fit_lomax(x: np.ndarray) -> FitResult:
    """Lomax (Pareto-II): the law of a Pareto excess over its minimum.

    If n ~ Pareto(α, β), then n - β has CCDF (β/(x+β))^α — supported on
    (0, ∞) with the same tail index.  This is the right family for
    baseline-subtracted noise (excess-over-threshold data)."""
    shape, _, scale = stats.lomax.fit(x, floc=0.0)
    n = x.size
    ll = float(stats.lomax(c=shape, scale=scale).logpdf(x).sum())
    return FitResult(
        family="lomax",
        params={"alpha": float(shape), "scale": float(scale)},
        log_likelihood=ll,
        aic=2 * 2 - 2 * ll,
        n=n,
    )


_FITTERS = {
    "pareto": _fit_pareto,
    "lomax": _fit_lomax,
    "exponential": _fit_exponential,
    "lognormal": _fit_lognormal,
    "weibull": _fit_weibull,
}

DEFAULT_FAMILIES = ("pareto", "lomax", "exponential", "lognormal", "weibull")


def fit_candidates(
    data: np.ndarray, families: tuple[str, ...] = DEFAULT_FAMILIES
) -> list[FitResult]:
    """ML-fit each candidate family; results sorted by AIC (best first)."""
    x = _clean_positive(data)
    unknown = set(families) - set(_FITTERS)
    if unknown:
        raise ValueError(f"unknown families {sorted(unknown)}; know {sorted(_FITTERS)}")
    results = [_FITTERS[f](x) for f in families]
    results.sort(key=lambda r: r.aic)
    return results


def classify_excess(
    observations: np.ndarray,
    *,
    baseline: float | None = None,
    families: tuple[str, ...] = DEFAULT_FAMILIES,
    min_relative_excess: float = 1e-6,
) -> list[FitResult]:
    """Fit the candidate families to the noise excess ``y - baseline``.

    ``baseline`` defaults to the sample minimum.  Note the statistics: if
    the noise is Pareto(α, β), the excess over the *minimum* is (almost) a
    Lomax(α, β) — supported at zero, not at β — which is why the Lomax
    family is in the default candidate set.  Supply ``baseline=f`` (the
    known noise-free cost) to fit the raw Pareto instead.

    Excesses below ``min_relative_excess × median(y)`` are dropped: they are
    indistinguishable from floating-point wobble around the baseline and a
    scale-free family like Pareto would otherwise latch onto them
    (β → machine epsilon, α → 0).
    """
    y = np.asarray(observations, dtype=float).ravel()
    y = y[np.isfinite(y)]
    if y.size < 20:
        raise ValueError(f"need at least 20 observations, got {y.size}")
    base = float(y.min()) if baseline is None else float(baseline)
    floor = min_relative_excess * float(np.median(np.abs(y)))
    excess = y - base
    excess = excess[excess > floor]
    if excess.size < 10:
        raise ValueError(
            "fewer than 10 positive excesses — the data look noise-free"
        )
    return fit_candidates(excess, families)


def classify_tail(
    data: np.ndarray,
    *,
    tail_fraction: float = 0.10,
    families: tuple[str, ...] = DEFAULT_FAMILIES,
) -> list[FitResult]:
    """Peaks-over-threshold classification of a sample's *tail*.

    Whole-sample AIC judges how well a family fits the distribution's body,
    which for mixtures (daemon + small spikes + big spikes) usually crowns
    lognormal regardless of the tail.  The paper's question — "is the
    variability heavy tailed?" — is about the tail, so this helper keeps
    only the top ``tail_fraction`` of the sample, subtracts the threshold
    (the classic POT construction: exceedances of a high threshold converge
    to a generalized-Pareto family, of which Lomax is the heavy branch),
    and fits the candidates to the exceedances.
    """
    if not (0.0 < tail_fraction < 1.0):
        raise ValueError(f"tail_fraction must lie in (0, 1), got {tail_fraction}")
    x = _clean_positive(data)
    threshold = float(np.quantile(x, 1.0 - tail_fraction))
    exceedances = x[x > threshold] - threshold
    if exceedances.size < 10:
        raise ValueError(
            f"only {exceedances.size} exceedances above the "
            f"{1 - tail_fraction:.0%} quantile; lower tail_fraction"
        )
    return fit_candidates(exceedances, families)
