"""Empirical heavy-tail diagnostics (paper §4.2–4.3, Figures 4–7).

The paper's recipe for deciding whether measured iteration times are heavy
tailed:

1. plot the pdf (histogram) and check that the last bars are non-negligible
   (Fig. 4, Fig. 6);
2. plot ``1 - cdf`` on log-log axes and check that the tail is approximately
   linear (Fig. 5, Fig. 7) — the slope estimates ``-α``;
3. truncate the data (drop samples above a cap) and repeat, to show that the
   *small* spikes are heavy tailed too, not just the big ones.

Because heavy tails have infinite higher moments, everything here is built
on order statistics (CCDF slopes, the Hill estimator) rather than sample
variance or kurtosis alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "empirical_pdf",
    "empirical_ccdf",
    "loglog_tail_fit",
    "hill_estimator",
    "truncate",
    "TailReport",
    "tail_report",
]


def _clean(data: np.ndarray) -> np.ndarray:
    arr = np.asarray(data, dtype=float).ravel()
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("no finite samples in data")
    return arr


def empirical_pdf(
    data: np.ndarray, bins: int = 30, *, log_bins: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram density estimate: returns ``(bin_edges, density)``.

    With ``log_bins=True`` bin edges are geometric, which resolves the tail
    of spiky data far better than uniform bins.
    """
    arr = _clean(data)
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if log_bins:
        positive = arr[arr > 0]
        if positive.size == 0:
            raise ValueError("log_bins requires positive samples")
        edges = np.geomspace(positive.min(), positive.max() * (1 + 1e-12), bins + 1)
        density, edges = np.histogram(positive, bins=edges, density=True)
    else:
        density, edges = np.histogram(arr, bins=bins, density=True)
    return edges, density


def empirical_ccdf(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical ``P[X > x]`` evaluated at the sorted sample points.

    Returns ``(x, q)`` with ``q[i] = (n - 1 - i) / n`` for sorted x; the last
    point has q = 0 and is usually dropped before log-log fitting.
    """
    arr = np.sort(_clean(data))
    n = arr.size
    q = (n - 1.0 - np.arange(n)) / n
    return arr, q


@dataclass(frozen=True)
class TailFit:
    """A straight-line fit of log(CCDF) against log(x) over the tail."""

    alpha: float          #: tail exponent estimate (negated slope)
    intercept: float      #: fit intercept in log-log space
    r_squared: float      #: goodness of the linear fit
    n_tail: int           #: number of tail points used
    x_min: float          #: smallest x included in the tail fit


def loglog_tail_fit(data: np.ndarray, tail_fraction: float = 0.10) -> TailFit:
    """Fit the upper-``tail_fraction`` of the CCDF on log-log axes.

    A heavy tail manifests as an approximately linear upper tail whose slope
    is ``-α`` with α < 2 (Eq. 8).  ``r_squared`` close to 1 supports the
    linearity claim the paper makes for Figs. 5 and 7.
    """
    if not (0.0 < tail_fraction <= 1.0):
        raise ValueError(f"tail_fraction must lie in (0, 1], got {tail_fraction}")
    x, q = empirical_ccdf(data)
    # Drop q == 0 (log undefined) and non-positive x.
    mask = (q > 0.0) & (x > 0.0)
    x, q = x[mask], q[mask]
    if x.size < 5:
        raise ValueError(f"need at least 5 usable samples for a tail fit, got {x.size}")
    n_tail = max(5, int(np.ceil(tail_fraction * x.size)))
    n_tail = min(n_tail, x.size)
    xs = np.log(x[-n_tail:])
    qs = np.log(q[-n_tail:])
    # Guard against repeated x values producing a singular design.
    if np.ptp(xs) <= 0:
        raise ValueError("tail is degenerate (all tail samples equal)")
    slope, intercept = np.polyfit(xs, qs, 1)
    pred = slope * xs + intercept
    ss_res = float(np.sum((qs - pred) ** 2))
    ss_tot = float(np.sum((qs - qs.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return TailFit(
        alpha=float(-slope),
        intercept=float(intercept),
        r_squared=float(r2),
        n_tail=int(n_tail),
        x_min=float(np.exp(xs[0])),
    )


def hill_estimator(data: np.ndarray, k: int | None = None) -> float:
    """Hill's estimator of the tail index α from the top-*k* order statistics.

    ``α̂ = k / Σ_{i=1..k} log(x_(n-i+1) / x_(n-k))`` — the maximum-likelihood
    estimator under an exact Pareto tail.  Default k = 10% of the sample
    (at least 5).
    """
    arr = np.sort(_clean(data))
    arr = arr[arr > 0]
    n = arr.size
    if n < 10:
        raise ValueError(f"need at least 10 positive samples, got {n}")
    if k is None:
        k = max(5, n // 10)
    if not (1 <= k < n):
        raise ValueError(f"k must lie in [1, {n - 1}], got {k}")
    tail = arr[n - k:]
    threshold = arr[n - k - 1]
    logs = np.log(tail / threshold)
    denom = float(logs.sum())
    if denom <= 0:
        raise ValueError("degenerate tail (all top-k samples equal the threshold)")
    return float(k / denom)


def truncate(data: np.ndarray, cap: float) -> np.ndarray:
    """Drop every sample strictly greater than *cap* (paper §4.3, Figs. 6–7)."""
    arr = _clean(data)
    if not np.isfinite(cap):
        raise ValueError(f"cap must be finite, got {cap}")
    return arr[arr <= cap]


@dataclass(frozen=True)
class TailReport:
    """Summary of the heavy-tail evidence for one data set."""

    n: int
    mean: float
    median: float
    maximum: float
    hill_alpha: float
    fit: TailFit
    frac_above_2x_median: float
    frac_above_5x_median: float
    heavy_tailed: bool
    notes: tuple[str, ...] = field(default_factory=tuple)

    def lines(self) -> list[str]:
        """Human-readable report rows (used by the figure benches)."""
        return [
            f"samples            : {self.n}",
            f"mean / median / max: {self.mean:.4g} / {self.median:.4g} / {self.maximum:.4g}",
            f"Hill alpha         : {self.hill_alpha:.3f}",
            f"CCDF tail slope    : -{self.fit.alpha:.3f} (R^2={self.fit.r_squared:.3f}, "
            f"n_tail={self.fit.n_tail})",
            f"P[X > 2*median]    : {self.frac_above_2x_median:.4f}",
            f"P[X > 5*median]    : {self.frac_above_5x_median:.4f}",
            f"heavy-tailed       : {self.heavy_tailed}",
        ]


def tail_report(
    data: np.ndarray,
    *,
    tail_fraction: float = 0.10,
    alpha_threshold: float = 2.0,
    r2_threshold: float = 0.90,
) -> TailReport:
    """Run the paper's full §4.3 diagnostic suite on one sample set.

    The verdict ``heavy_tailed`` is True when the Hill estimate is below
    ``alpha_threshold`` (Eq. 8's α < 2) *and* the log-log tail is close to
    linear (R² above ``r2_threshold``).
    """
    arr = _clean(data)
    fit = loglog_tail_fit(arr, tail_fraction)
    hill = hill_estimator(arr)
    med = float(np.median(arr))
    notes: list[str] = []
    if med <= 0:
        notes.append("median <= 0; exceedance fractions use absolute thresholds")
        frac2 = float(np.mean(arr > 2.0))
        frac5 = float(np.mean(arr > 5.0))
    else:
        frac2 = float(np.mean(arr > 2.0 * med))
        frac5 = float(np.mean(arr > 5.0 * med))
    heavy = (hill < alpha_threshold) and (fit.r_squared >= r2_threshold)
    return TailReport(
        n=int(arr.size),
        mean=float(arr.mean()),
        median=med,
        maximum=float(arr.max()),
        hill_alpha=hill,
        fit=fit,
        frac_above_2x_median=frac2,
        frac_above_5x_median=frac5,
        heavy_tailed=bool(heavy),
        notes=tuple(notes),
    )
