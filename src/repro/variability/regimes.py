"""Markov-modulated (bursty) noise — variability that comes in episodes.

Real cluster interference is not i.i.d.: a backup job or file-system scan
degrades performance for a *stretch* of iterations, then disappears.  This
module models that with a two-state Markov chain (QUIET / BUSY) whose state
persists across calls: in QUIET the node behaves like a low-ρ system, in
BUSY like a high-ρ system.  The long-run average idle throughput is the
stationary mixture, so Normalized Total Time remains well defined.

Bursty noise is the stress test for the *adaptive* K controller: a fixed K
wastes samples in quiet stretches and under-samples in busy ones, while the
controller should track the regime.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_probability
from repro.variability.models import NoiseModel, ParetoNoise

__all__ = ["MarkovModulatedNoise"]


class MarkovModulatedNoise(NoiseModel):
    """Two-regime Pareto noise with persistent (Markov) regime switching.

    Parameters
    ----------
    rho_quiet, rho_busy:
        Idle throughput in each regime (Eq. 17 scales the Pareto noise).
    p_enter_busy:
        Per-observation probability of switching QUIET → BUSY.
    p_exit_busy:
        Per-observation probability of switching BUSY → QUIET.
    alpha:
        Pareto shape shared by both regimes.

    Note: the regime advances once per *observation*, and a whole batch
    (one parallel wave) shares the regime — a cluster-wide phenomenon, like
    the shared sources in the queue simulator.
    """

    def __init__(
        self,
        *,
        rho_quiet: float = 0.05,
        rho_busy: float = 0.45,
        p_enter_busy: float = 0.05,
        p_exit_busy: float = 0.20,
        alpha: float = 1.7,
    ) -> None:
        if rho_busy <= rho_quiet:
            raise ValueError(
                f"busy regime must be noisier: rho_busy={rho_busy} <= "
                f"rho_quiet={rho_quiet}"
            )
        self.p_enter_busy = check_probability("p_enter_busy", p_enter_busy)
        self.p_exit_busy = check_probability("p_exit_busy", p_exit_busy)
        if self.p_enter_busy == 0.0 or self.p_exit_busy == 0.0:
            raise ValueError("switching probabilities must be positive")
        self._quiet = ParetoNoise(rho=rho_quiet, alpha=alpha) if rho_quiet > 0 else None
        self._busy = ParetoNoise(rho=rho_busy, alpha=alpha)
        self.rho_quiet = float(rho_quiet)
        self.rho_busy = float(rho_busy)
        self.alpha = float(alpha)
        #: stationary BUSY probability of the two-state chain
        self.busy_fraction = self.p_enter_busy / (self.p_enter_busy + self.p_exit_busy)
        # Long-run idle throughput: stationary mixture of regime rhos.
        self.rho = (
            (1.0 - self.busy_fraction) * self.rho_quiet
            + self.busy_fraction * self.rho_busy
        )
        self._in_busy = False
        #: observation counter and busy-observation counter (diagnostics)
        self.n_observations = 0
        self.n_busy_observations = 0

    @property
    def in_busy_regime(self) -> bool:
        return self._in_busy

    def _advance(self, rng: np.random.Generator) -> None:
        if self._in_busy:
            if rng.random() < self.p_exit_busy:
                self._in_busy = False
        else:
            if rng.random() < self.p_enter_busy:
                self._in_busy = True

    def sample_noise(self, f: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        self._advance(rng)
        self.n_observations += 1
        if self._in_busy:
            self.n_busy_observations += 1
            return self._busy.sample_noise(f, rng)
        if self._quiet is None:
            return np.zeros_like(f)
        return self._quiet.sample_noise(f, rng)

    def reset(self) -> None:
        """Return to the QUIET regime and clear counters."""
        self._in_busy = False
        self.n_observations = 0
        self.n_busy_observations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MarkovModulatedNoise(rho_quiet={self.rho_quiet}, "
            f"rho_busy={self.rho_busy}, busy_fraction={self.busy_fraction:.3f})"
        )
