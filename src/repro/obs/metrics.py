"""A tiny metrics registry: counters, gauges, histograms.

The sweep runner aggregates what a trace records event-by-event into a
handful of numbers cheap enough to ship inside ``SweepResult.meta["obs"]``:
how many trials ran/failed (by kind), how long probes took, how long tasks
queued, how many bytes the shared-memory broadcast moved, how well the
database memo performed.  Zero dependencies, JSON-native snapshots.

Histograms keep raw samples (sweeps observe at most a few thousand values)
and summarize them at snapshot time; quantiles use the same linear
interpolation as ``np.quantile`` defaults.  Long-running recorders — the
tuning server observes one latency sample per request, indefinitely — pass
``max_samples`` to turn each histogram into a sliding window of the most
recent values instead of an unbounded list.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = ["MetricsRegistry"]

#: quantiles reported for every histogram
_QUANTILES = (0.5, 0.9, 0.99)


class MetricsRegistry:
    """Counters, gauges, and sample-backed histograms behind one lock.

    The lock is uncontended in practice — the sweep runner records from the
    parent only, at trial granularity — but makes the registry safe to
    share with ``collect`` hooks running under a thread executor.

    ``max_samples=None`` (the default) keeps every observed sample;
    a positive cap keeps only the most recent *max_samples* per histogram
    (``total`` in the snapshot still counts all observations).
    """

    def __init__(self, *, max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._samples: dict[str, deque[float]] = {}
        self._observed: dict[str, int] = {}

    def inc(self, name: str, by: int = 1) -> None:
        """Increment counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(by)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one sample to histogram *name* (a sliding window when capped)."""
        with self._lock:
            buf = self._samples.get(name)
            if buf is None:
                buf = self._samples[name] = deque(maxlen=self.max_samples)
            buf.append(float(value))
            self._observed[name] = self._observed.get(name, 0) + 1

    def snapshot(self) -> dict:
        """JSON-safe summary of everything recorded so far.

        ``{"counters": {...}, "gauges": {...}, "histograms": {name:
        {count, min, max, mean, p50, p90, p99}}}``, keys sorted so equal
        recordings serialize identically.
        """
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            samples = {k: list(v) for k, v in sorted(self._samples.items())}
            observed = dict(self._observed)
        histograms = {}
        for name, values in samples.items():
            arr = np.asarray(values, dtype=float)
            finite = arr[np.isfinite(arr)]
            summary = {"count": int(arr.size)}
            if observed.get(name, arr.size) != arr.size:
                # The window dropped old samples; expose the true total too.
                summary["total"] = int(observed[name])
            if finite.size:
                summary.update(
                    min=float(finite.min()),
                    max=float(finite.max()),
                    mean=float(finite.mean()),
                )
                for q in _QUANTILES:
                    summary[f"p{int(q * 100)}"] = float(np.quantile(finite, q))
            histograms[name] = summary
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
