"""A tiny metrics registry: counters, gauges, histograms.

The sweep runner aggregates what a trace records event-by-event into a
handful of numbers cheap enough to ship inside ``SweepResult.meta["obs"]``:
how many trials ran/failed (by kind), how long probes took, how long tasks
queued, how many bytes the shared-memory broadcast moved, how well the
database memo performed.  Zero dependencies, JSON-native snapshots.

Histograms keep raw samples (sweeps observe at most a few thousand values)
and summarize them at snapshot time; quantiles use the same linear
interpolation as ``np.quantile`` defaults.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["MetricsRegistry"]

#: quantiles reported for every histogram
_QUANTILES = (0.5, 0.9, 0.99)


class MetricsRegistry:
    """Counters, gauges, and sample-backed histograms behind one lock.

    The lock is uncontended in practice — the sweep runner records from the
    parent only, at trial granularity — but makes the registry safe to
    share with ``collect`` hooks running under a thread executor.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._samples: dict[str, list[float]] = {}

    def inc(self, name: str, by: int = 1) -> None:
        """Increment counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(by)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one sample to histogram *name*."""
        with self._lock:
            self._samples.setdefault(name, []).append(float(value))

    def snapshot(self) -> dict:
        """JSON-safe summary of everything recorded so far.

        ``{"counters": {...}, "gauges": {...}, "histograms": {name:
        {count, min, max, mean, p50, p90, p99}}}``, keys sorted so equal
        recordings serialize identically.
        """
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            samples = {k: list(v) for k, v in sorted(self._samples.items())}
        histograms = {}
        for name, values in samples.items():
            arr = np.asarray(values, dtype=float)
            finite = arr[np.isfinite(arr)]
            summary = {"count": int(arr.size)}
            if finite.size:
                summary.update(
                    min=float(finite.min()),
                    max=float(finite.max()),
                    mean=float(finite.mean()),
                )
                for q in _QUANTILES:
                    summary[f"p{int(q * 100)}"] = float(np.quantile(finite, q))
            histograms[name] = summary
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
