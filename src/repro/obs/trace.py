"""Structured trace events for tuning runs.

Every interesting moment of an online tuning run — a session time step, a
batch proposed or accepted, an expansion check, an injected fault, a retry,
a straggler re-dispatch, a lost worker — becomes one typed, timestamped
:class:`dict` record.  A :class:`Tracer` collects records into per-thread
buffers (append-only lists, no lock on the hot path) and either keeps them
in memory (the parent process) or flushes them to a per-worker JSONL shard
file that the sweep runner merges on gather.

Design constraints, in order:

* **disabled tracing is free** — every instrumentation site guards on a
  single ``is None`` check; no tracer object is ever constructed unless the
  caller asked for a trace;
* **deterministic modulo timestamps** — event payloads carry only model
  quantities (seeds, step kinds, barrier times, costs), never PIDs, object
  ids, or host names; :func:`canonical_events` strips the volatile
  wall-clock fields and imposes a deterministic order, so a canonicalized
  trace of a seeded run is byte-stable and can serve as a golden fixture;
* **worker-safe** — workers never share a file descriptor with the parent:
  each (process, thread) writes its own shard, and identity is carried in
  the events (``cell``/``trial``/``attempt``), not in the file layout.

Event records always carry ``seq`` (per-tracer emission counter), ``ts``
(wall clock, volatile), ``kind``, ``src`` (``"sweep"``/``"worker"``/
``"session"``), and — inside a :meth:`Tracer.scope` — the task identity
fields ``cell``, ``trial``, ``attempt``.  Everything else is kind-specific
payload; see ``docs/API.md`` for the full schema table.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from itertools import count
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "EVENT_KINDS",
    "VOLATILE_FIELDS",
    "Tracer",
    "activated",
    "active_tracer",
    "canonical_events",
    "emit",
    "read_trace",
    "worker_tracer",
    "write_jsonl",
]

#: the typed event vocabulary (instrumentation sites must stick to these)
EVENT_KINDS = frozenset(
    {
        # sweep scope (parent)
        "sweep.start",
        "sweep.end",
        "retry.dispatch",
        "trial.settled",
        "worker.lost",
        "shm.export",
        # trial scope (worker)
        "trial.start",
        "trial.end",
        "trial.fail",
        "fault.injected",
        # session scope (inside one tuning run)
        "session.start",
        "session.step",
        "batch.proposed",
        "batch.told",
        "session.end",
        # tuner scope (PRO state machine)
        "pro.step",
        "pro.expand_check",
        "tuner.converged",
        # substrate scope
        "fault.fire",
        "db.materialize",
        "shm.attach",
        # serving scope (the tuning service's request path)
        "server.request",
        "server.batch",
        "server.session",
        # durability scope (the write-ahead log)
        "wal.append",
        "wal.replay",
        "wal.snapshot",
        "wal.recover",
        # fleet scope (the coordinator's registry; heartbeats are
        # counters-only — they would swamp a trace)
        "fleet.register",
        "fleet.locate",
        "fleet.expire",
        "fleet.rehome",
    }
)

#: wall-clock-derived fields stripped by :func:`canonical_events`
VOLATILE_FIELDS = ("ts", "dur_s", "wait_s")

#: identity fields injected from the active :meth:`Tracer.scope`
_SCOPE_FIELDS = ("cell", "trial", "attempt", "src")


class Tracer:
    """Collects typed trace events; one instance per process per role.

    ``shard_dir=None`` keeps events in memory (:meth:`drain` returns them);
    with a shard directory, :meth:`flush` appends the calling thread's
    buffer to a ``shard-<pid>-<tid>.jsonl`` file so pool workers can hand
    their events to the parent through the filesystem.
    """

    def __init__(self, label: str = "trace", shard_dir: str | Path | None = None):
        self.label = label
        self.shard_dir = Path(shard_dir) if shard_dir is not None else None
        self._seq = count()
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._buffers: list[list[dict]] = []

    # -- hot path ---------------------------------------------------------------

    def _buffer(self) -> list[dict]:
        buf = getattr(self._tls, "buf", None)
        if buf is None:
            buf = self._tls.buf = []
            with self._lock:
                self._buffers.append(buf)
        return buf

    def emit(self, kind: str, **fields) -> None:
        """Record one event, stamped with the current scope and wall clock."""
        event: dict = {"seq": next(self._seq), "ts": time.time(), "kind": kind}
        scope = getattr(self._tls, "scope", None)
        event["src"] = self.label if scope is None else scope.get("src", self.label)
        if scope is not None:
            for key in ("cell", "trial", "attempt"):
                value = scope.get(key)
                if value is not None:
                    event[key] = value
        event.update(fields)
        self._buffer().append(event)

    @contextmanager
    def scope(self, **scope) -> Iterator[None]:
        """Attach identity fields (cell/trial/attempt/src) to nested emits.

        Scopes are thread-local, so concurrent trials on a thread pool each
        see their own identity; nesting merges (inner keys win).
        """
        previous = getattr(self._tls, "scope", None)
        merged = dict(previous) if previous else {}
        merged.update(scope)
        self._tls.scope = merged
        try:
            yield
        finally:
            self._tls.scope = previous

    # -- draining ---------------------------------------------------------------

    def flush(self) -> None:
        """Append the calling thread's buffer to its shard file and clear it.

        No-op without a shard directory (parent tracers drain in memory).
        Called after every trial so events survive a worker that is later
        killed mid-sweep.
        """
        if self.shard_dir is None:
            return
        buf = self._buffer()
        if not buf:
            return
        path = self.shard_dir / f"shard-{os.getpid()}-{threading.get_ident()}.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            for event in buf:
                fh.write(json.dumps(event) + "\n")
        buf.clear()

    def drain(self) -> list[dict]:
        """All in-memory events across threads, in emission (seq) order."""
        with self._lock:
            merged = [event for buf in self._buffers for event in buf]
        merged.sort(key=lambda e: e["seq"])
        return merged


# -- process-global tracer plumbing -----------------------------------------------
#
# Substrate-level instrumentation (FaultyEvaluator, PerformanceDatabase)
# cannot thread a tracer argument through every call chain; they emit via
# the module-level ``emit``, which resolves the thread-local active tracer
# installed by ``activated`` around a traced trial or session.  One None
# check when tracing is off.

_active_tls = threading.local()

#: cache of worker tracers, keyed by shard directory.  Entries are
#: ``(pid, tracer)``: fork-started pool workers inherit the parent's cache
#: (including an adopted parent tracer that never writes shards), so a
#: stale-pid entry must be replaced, not trusted.
_worker_tracers: dict[str, tuple[int, Tracer]] = {}


def active_tracer() -> Tracer | None:
    """The tracer installed for the calling thread, or None."""
    return getattr(_active_tls, "tracer", None)


@contextmanager
def activated(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as the calling thread's active tracer."""
    previous = getattr(_active_tls, "tracer", None)
    _active_tls.tracer = tracer
    try:
        yield tracer
    finally:
        _active_tls.tracer = previous


def emit(kind: str, **fields) -> None:
    """Emit through the thread's active tracer; free no-op when tracing is off."""
    tracer = getattr(_active_tls, "tracer", None)
    if tracer is not None:
        tracer.emit(kind, **fields)


def worker_tracer(spec: dict) -> Tracer:
    """The per-process tracer for a sweep's shard directory (cached).

    *spec* is the JSON-safe descriptor a :class:`SweepTask` carries:
    ``{"dir": <shard directory>}``.  Every executor funnels through here, so
    serial, thread, and process workers share one code path.  In the sweep
    runner's own process the cache is pre-seeded with the parent tracer
    (see :func:`_adopt_worker_tracer`), so serial and thread trials append
    to its in-memory buffers directly; only genuine worker processes — whose
    cache starts empty — pay for JSONL shards.
    """
    key = spec["dir"]
    entry = _worker_tracers.get(key)
    if entry is not None and entry[0] == os.getpid():
        return entry[1]
    tracer = Tracer(label="worker", shard_dir=key)
    _worker_tracers[key] = (os.getpid(), tracer)
    return tracer


def _adopt_worker_tracer(spec: dict, tracer: Tracer) -> None:
    """Pre-seed this process's worker-tracer cache with the parent tracer.

    Trials that run in the parent process (serial and thread executors)
    then skip the shard-file round trip: their events land in the parent's
    per-thread buffers and come back through ``drain()``.  The entry is
    pid-stamped, so a forked pool worker builds its own shard tracer
    instead of inheriting this one (whose buffers the parent would never
    see).
    """
    _worker_tracers[spec["dir"]] = (os.getpid(), tracer)


def _forget_worker_tracer(spec: dict) -> None:
    """Drop the cached worker tracer for a finished sweep (parent side)."""
    _worker_tracers.pop(spec["dir"], None)


# -- files -----------------------------------------------------------------------


def write_jsonl(events: Iterable[dict], path: str | Path) -> None:
    """Write events one-JSON-object-per-line."""
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


def read_trace(path: str | Path) -> list[dict]:
    """Load a JSONL trace file (blank lines tolerated)."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def read_shards(shard_dir: str | Path) -> list[dict]:
    """Load and concatenate every worker shard under *shard_dir*."""
    events: list[dict] = []
    for path in sorted(Path(shard_dir).glob("shard-*.jsonl")):
        events.extend(read_trace(path))
    return events


# -- canonical ordering ------------------------------------------------------------


def _rank(event: dict) -> int:
    """Within one (cell, trial, attempt) group: dispatch, worker, verdict."""
    if event.get("kind") == "retry.dispatch":
        return 0
    if event.get("src") == "worker":
        return 1
    return 2


def _sort_key(event: dict):
    cell = event.get("cell")
    if cell is None:
        # Sweep/session-level events keep their emission order, ahead of
        # the per-task groups (their seq came from the parent tracer).
        return (0, 0, 0, 0, 0, event["seq"])
    return (
        1,
        cell,
        event.get("trial", -1),
        event.get("attempt", -1),
        _rank(event),
        event["seq"],
    )


def canonical_events(events: Iterable[dict], *, strip: bool = True) -> list[dict]:
    """Deterministic ordering (and optional volatile-field stripping).

    Ordering: header (task-less) events in emission order, then per-task
    groups cell-major / trial-minor / attempt-ascending, each group ordered
    dispatch → worker events → parent verdict, by emission within a source.
    With ``strip=True`` the wall-clock fields (:data:`VOLATILE_FIELDS`) and
    the ``seq`` counter are removed, leaving only model-deterministic
    payloads — the form committed as golden fixtures.
    """
    ordered = sorted(events, key=_sort_key)
    if not strip:
        return ordered
    return [
        {k: v for k, v in event.items() if k != "seq" and k not in VOLATILE_FIELDS}
        for event in ordered
    ]
