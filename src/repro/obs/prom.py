"""Prometheus text-format export of a :class:`~repro.obs.MetricsRegistry`.

Two pieces, both stdlib-only:

* :func:`render_prometheus` — turn a :meth:`MetricsRegistry.snapshot`
  into exposition-format text (version 0.0.4): counters as ``_total``
  counters, gauges as gauges, histogram windows as summaries with
  ``quantile`` labels.  Deterministic for a given snapshot (keys are
  already sorted), which is what the golden-scrape test pins down.
* :class:`MetricsEndpoint` — a daemon-threaded HTTP server answering
  ``GET /metrics`` with a fresh render, so ``repro serve --metrics-port``
  and the fleet coordinator are scrapeable by a stock Prometheus.

Dots in metric names become underscores (``server.requests`` →
``repro_server_requests_total``); the ``repro_`` namespace prefix keeps
the fleet's series from colliding with anything else on the scrape host.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

__all__ = ["CONTENT_TYPE", "MetricsEndpoint", "render_prometheus"]

#: the exposition-format content type Prometheus expects
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_QUANTILE_KEYS = (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"))


def _name(namespace: str, raw: str) -> str:
    """A legal Prometheus metric name: namespaced, bad chars to ``_``."""
    return f"{namespace}_{re.sub(r'[^a-zA-Z0-9_:]', '_', raw)}"


def _fmt(value: float) -> str:
    """Render a sample value (repr keeps full float precision; ints stay ints)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    snapshot: Mapping[str, Any], *, namespace: str = "repro"
) -> str:
    """Exposition-format text for one metrics *snapshot*.

    Counters become ``<ns>_<name>_total`` (TYPE counter), gauges map
    directly (TYPE gauge), and histogram windows render as summaries:
    ``quantile``-labelled samples from the window's p50/p90/p99 plus
    ``_count`` (all-time observation count when the window overflowed,
    else the window count) and ``_sum`` (mean × window count — the
    window's sum, the closest faithful value a quantile window can offer).
    """
    lines: list[str] = []
    for raw, value in snapshot.get("counters", {}).items():
        name = _name(namespace, raw) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(value)}")
    for raw, value in snapshot.get("gauges", {}).items():
        name = _name(namespace, raw)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    for raw, summary in snapshot.get("histograms", {}).items():
        name = _name(namespace, raw)
        lines.append(f"# TYPE {name} summary")
        for key, quantile in _QUANTILE_KEYS:
            if key in summary:
                lines.append(
                    f'{name}{{quantile="{quantile}"}} {_fmt(summary[key])}'
                )
        count = int(summary.get("count", 0))
        lines.append(f"{name}_count {summary.get('total', count)}")
        if "mean" in summary:
            lines.append(f"{name}_sum {_fmt(summary['mean'] * count)}")
    return "\n".join(lines) + "\n"


class MetricsEndpoint:
    """Serve ``GET /metrics`` scrapes for one registry on a daemon thread."""

    def __init__(
        self,
        registry: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
    ) -> None:
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served here")
                    return
                body = render_prometheus(
                    endpoint.registry.snapshot(), namespace=endpoint.namespace
                ).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes are high-frequency; stay quiet

        self.registry = registry
        self.namespace = namespace
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "MetricsEndpoint":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.2},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
