"""Human-readable digest of a JSONL trace (``repro trace PATH``).

Turns the raw event stream back into the questions an operator actually
asks after a run: where did the time steps go (evaluate vs exploit, per
PRO phase), which trials were slowest, what failed and when, how noisy
were the barrier times.  Pure string output built on the monospace
primitives in :mod:`repro.report.ascii`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.report.ascii import histogram, sparkline

__all__ = ["summarize_trace"]

#: events that belong on the failure timeline, in the order they matter
_FAILURE_KINDS = (
    "fault.injected",
    "fault.fire",
    "trial.fail",
    "worker.lost",
    "retry.dispatch",
)


def _ident(event: dict) -> str:
    """``cell c trial t attempt a`` for events that carry task identity."""
    parts = []
    for key in ("cell", "trial", "attempt"):
        if key in event:
            parts.append(f"{key} {event[key]}")
    return " ".join(parts) if parts else "-"


def _payload(event: dict, skip=("seq", "ts", "kind", "src", "cell", "trial", "attempt")) -> str:
    items = [f"{k}={v}" for k, v in event.items() if k not in skip]
    return " ".join(items)


def summarize_trace(events: Iterable[dict]) -> str:
    """Render the per-phase/time/failure digest of a trace."""
    # Imported here, not at module level: the instrumented modules under
    # repro.experiments import repro.obs, so a module-level import of
    # experiments._fmt would close an import cycle through the package
    # __init__.
    from repro.experiments import _fmt

    events = list(events)
    if not events:
        return "empty trace (0 events)"
    sections: list[str] = [f"trace: {len(events)} events"]

    # -- event counts ---------------------------------------------------------
    counts = Counter(e.get("kind", "?") for e in events)
    sections.append(
        _fmt.format_table(
            ["event", "count"], [[k, c] for k, c in sorted(counts.items())]
        )
    )

    # -- time-step breakdown (model time, from session.step events) -----------
    steps = [e for e in events if e.get("kind") == "session.step"]
    if steps:
        by_kind: dict[str, list[float]] = {}
        for e in steps:
            by_kind.setdefault(str(e.get("step_kind", "?")), []).append(
                float(e.get("t_step", 0.0))
            )
        total = sum(sum(v) for v in by_kind.values())
        rows = [
            [kind, len(v), sum(v), (sum(v) / total if total else 0.0)]
            for kind, v in sorted(by_kind.items())
        ]
        sections.append("time steps by kind (model Total_Time):")
        sections.append(
            _fmt.format_table(["kind", "steps", "time", "share"], rows)
        )

    # -- PRO phase breakdown --------------------------------------------------
    pro = Counter(
        str(e.get("step", "?"))
        for e in events
        if e.get("kind") == "pro.step"
    )
    checks = [e for e in events if e.get("kind") == "pro.expand_check"]
    if pro:
        rows = [[step, c] for step, c in sorted(pro.items())]
        if checks:
            passed = sum(bool(e.get("passed")) for e in checks)
            rows.append(["expand_check passed", f"{passed}/{len(checks)}"])
        sections.append("PRO steps:")
        sections.append(_fmt.format_table(["step", "count"], rows))

    # -- slowest trials -------------------------------------------------------
    settled = [e for e in events if e.get("kind") == "trial.settled"]
    ok = [e for e in settled if e.get("status") == "ok"]
    if ok:
        slow = sorted(ok, key=lambda e: -float(e.get("total_time", 0.0)))[:5]
        sections.append("slowest trials (by Total_Time):")
        sections.append(
            _fmt.format_table(
                ["cell", "trial", "Total_Time", "NTT", "final cost"],
                [
                    [
                        e.get("cell", "-"),
                        e.get("trial", "-"),
                        float(e.get("total_time", float("nan"))),
                        float(e.get("ntt", float("nan"))),
                        float(e.get("final_cost", float("nan"))),
                    ]
                    for e in slow
                ],
            )
        )

    # -- failure timeline -----------------------------------------------------
    failures = [e for e in events if e.get("kind") in _FAILURE_KINDS]
    if failures:
        sections.append(f"failure timeline ({len(failures)} events):")
        lines = [
            f"  {e['kind']:<16s} {_ident(e):<28s} {_payload(e)}".rstrip()
            for e in failures
        ]
        sections.append("\n".join(lines))

    # -- barrier-time distribution -------------------------------------------
    t_steps = [float(e.get("t_step", 0.0)) for e in steps]
    if len(t_steps) >= 2:
        sections.append(f"barrier times |{sparkline(t_steps)}|")
        sections.append(
            histogram(t_steps, bins=12, title="per-step barrier time")
        )
    return "\n\n".join(sections)
