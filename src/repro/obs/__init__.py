"""Observability for tuning runs: structured traces + aggregate metrics.

``repro.obs`` is the layer the rest of the package reports through:

* :mod:`repro.obs.trace` — typed, timestamped event records with
  per-worker shard files and a deterministic canonical ordering (golden
  fixtures strip only wall-clock fields);
* :mod:`repro.obs.metrics` — counters/gauges/histograms snapshot into
  ``SweepResult.meta["obs"]``;
* :mod:`repro.obs.prom` — Prometheus text-format rendering of a registry
  snapshot plus a scrapeable ``/metrics`` HTTP endpoint;
* :mod:`repro.obs.replay` — rebuilds sweep aggregates from a trace (the
  trace-is-faithful invariant the property tests enforce);
* :mod:`repro.obs.summary` — the ``repro trace PATH`` digest.

Everything is stdlib + NumPy; with tracing off, instrumentation sites
reduce to one ``is None`` check.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import MetricsEndpoint, render_prometheus
from repro.obs.replay import replay_sweep
from repro.obs.summary import summarize_trace
from repro.obs.trace import (
    EVENT_KINDS,
    Tracer,
    activated,
    active_tracer,
    canonical_events,
    emit,
    read_trace,
    write_jsonl,
)

__all__ = [
    "EVENT_KINDS",
    "MetricsEndpoint",
    "MetricsRegistry",
    "Tracer",
    "activated",
    "active_tracer",
    "canonical_events",
    "emit",
    "read_trace",
    "render_prometheus",
    "replay_sweep",
    "summarize_trace",
    "write_jsonl",
]
