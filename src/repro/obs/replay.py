"""Rebuild sweep aggregates from a trace — the trace-is-faithful check.

A merged sweep trace carries one authoritative ``trial.settled`` event per
task, emitted by the *parent* after every recovery round has run (worker
events can race an abandoned straggler thread; the parent's verdict
cannot).  Replaying those events through the same NumPy reductions the
sweep runner uses must reproduce the :class:`SweepResult` aggregates
exactly — bit-for-bit, since JSON floats round-trip losslessly and the
accumulation order (trial-minor within each cell) is identical.

``tests/obs/test_replay_property.py`` holds this invariant under
hypothesis across every executor, with and without fault injection.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["replay_sweep"]


def replay_sweep(events: Iterable[dict]) -> dict:
    """Aggregate a sweep trace's ``trial.settled`` events per cell.

    Returns ``{"cells": {name: {ntt_mean, ntt_std, final_cost_mean,
    total_time_mean, converged_fraction, trials, failures}}, "best":
    <best cell by mean NTT>, "n_failed": int}``.  Cells whose every trial
    failed report NaN aggregates, like the runner.
    """
    events = list(events)
    names: dict[int, str] = {}
    for event in events:
        if event.get("kind") == "sweep.start":
            names = {i: n for i, n in enumerate(event.get("cell_names", []))}
            break
    settled: dict[int, list[dict]] = {}
    for event in events:
        if event.get("kind") != "trial.settled":
            continue
        settled.setdefault(int(event["cell"]), []).append(event)
    cells: dict[str, dict] = {}
    n_failed = 0
    for cell_index in sorted(settled):
        rows = sorted(settled[cell_index], key=lambda e: int(e["trial"]))
        ok = [e for e in rows if e.get("status") == "ok"]
        failed = len(rows) - len(ok)
        n_failed += failed
        name = names.get(cell_index, str(cell_index))
        if ok:
            ntts = np.array([e["ntt"] for e in ok], dtype=float)
            finals = np.array([e["final_cost"] for e in ok], dtype=float)
            totals = np.array([e["total_time"] for e in ok], dtype=float)
            cells[name] = {
                "ntt_mean": float(ntts.mean()),
                "ntt_std": float(ntts.std()),
                "final_cost_mean": float(np.nanmean(finals)),
                "total_time_mean": float(totals.mean()),
                "converged_fraction": sum(bool(e["converged"]) for e in ok)
                / len(ok),
                "trials": len(ok),
                "failures": failed,
            }
        else:
            cells[name] = {
                "ntt_mean": float("nan"),
                "ntt_std": float("nan"),
                "final_cost_mean": float("nan"),
                "total_time_mean": float("nan"),
                "converged_fraction": 0.0,
                "trials": 0,
                "failures": failed,
            }
    best = None
    if cells:
        best = min(cells, key=lambda n: _nan_last(cells[n]["ntt_mean"]))
    return {"cells": cells, "best": best, "n_failed": n_failed}


def _nan_last(value: float) -> float:
    return float("inf") if np.isnan(value) else value
