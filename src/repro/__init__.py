"""repro — reproduction of *Parallel Parameter Tuning for Applications with
Performance Variability* (Tabatabaee, Tiwari, Hollingsworth; SC 2005).

The package provides:

* the **Parallel Rank Ordering (PRO)** online tuner and its sequential
  sibling (:mod:`repro.core`), plus baseline strategies (:mod:`repro.search`);
* the **min-operator multi-sampling** machinery for heavy-tail-resilient
  performance estimation (:mod:`repro.core.sampling`,
  :mod:`repro.variability`);
* an **event-driven two-priority-queue cluster simulator**
  (:mod:`repro.cluster`) and analytic noise models;
* an **Active Harmony-style online tuning substrate**
  (:mod:`repro.harmony`): sessions with the paper's Total_Time accounting,
  plus a client/server tuning service;
* workloads (:mod:`repro.apps`) including the GS2 performance surrogate and
  the paper's interpolating performance database;
* one module per paper figure under :mod:`repro.experiments`.

Quickstart::

    import repro

    problem = repro.quadratic_problem(n=3)
    tuner = repro.ParallelRankOrdering(problem.space)
    session = repro.TuningSession(tuner, problem.objective, budget=200, rng=0)
    result = session.run()
    print(result.best_point, result.best_true_cost)
"""

from repro.space import (
    FloatParameter,
    IntParameter,
    OrdinalParameter,
    Parameter,
    ParameterSpace,
)
from repro.core import (
    AdaptiveSamplingController,
    BatchTuner,
    KPlanner,
    MeanEstimator,
    MedianEstimator,
    MinEstimator,
    ParallelRankOrdering,
    SamplingPlan,
    SequentialRankOrdering,
    Simplex,
    Vertex,
    axial_simplex,
    identify_noise,
    minimal_simplex,
    required_samples,
)
from repro.search import (
    CoordinateDescent,
    GeneticAlgorithm,
    NelderMead,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.variability import (
    ExponentialNoise,
    MarkovModulatedNoise,
    GaussianNoise,
    NoNoise,
    ParetoDistribution,
    ParetoNoise,
    SpikeMixtureNoise,
    TruncatedParetoNoise,
    TwoJobModel,
)
from repro.cluster import Cluster, ClusterTrace, PriorityMachine
from repro.faults import (
    FaultPlan,
    FaultyEvaluator,
    FaultyFactory,
    InjectedFault,
)
from repro.harmony import (
    AsyncTcpServerTransport,
    ClusterEvaluator,
    DatabaseEvaluator,
    FunctionEvaluator,
    InProcessTransport,
    PipelinedTcpClientTransport,
    SessionResult,
    TcpClientTransport,
    TcpServerTransport,
    TuningClient,
    TuningServer,
    TuningSession,
)
from repro.apps import (
    GS2Surrogate,
    StencilSurrogate,
    PerformanceDatabase,
    plateau_problem,
    quadratic_problem,
    rastrigin_problem,
    rosenbrock_problem,
)

__version__ = "1.0.0"

__all__ = [
    # space
    "Parameter",
    "IntParameter",
    "FloatParameter",
    "OrdinalParameter",
    "ParameterSpace",
    # core tuners
    "BatchTuner",
    "ParallelRankOrdering",
    "SequentialRankOrdering",
    "Simplex",
    "Vertex",
    "axial_simplex",
    "minimal_simplex",
    # sampling
    "SamplingPlan",
    "MinEstimator",
    "MeanEstimator",
    "MedianEstimator",
    "AdaptiveSamplingController",
    "KPlanner",
    "identify_noise",
    "required_samples",
    # baselines
    "NelderMead",
    "SimulatedAnnealing",
    "GeneticAlgorithm",
    "RandomSearch",
    "CoordinateDescent",
    # variability
    "ParetoDistribution",
    "TwoJobModel",
    "NoNoise",
    "ParetoNoise",
    "TruncatedParetoNoise",
    "GaussianNoise",
    "ExponentialNoise",
    "SpikeMixtureNoise",
    "MarkovModulatedNoise",
    # cluster
    "Cluster",
    "ClusterTrace",
    "PriorityMachine",
    # faults
    "FaultPlan",
    "FaultyEvaluator",
    "FaultyFactory",
    "InjectedFault",
    # harmony
    "TuningSession",
    "SessionResult",
    "FunctionEvaluator",
    "DatabaseEvaluator",
    "ClusterEvaluator",
    "TuningServer",
    "TuningClient",
    "InProcessTransport",
    "TcpServerTransport",
    "TcpClientTransport",
    "PipelinedTcpClientTransport",
    "AsyncTcpServerTransport",
    # apps
    "GS2Surrogate",
    "StencilSurrogate",
    "PerformanceDatabase",
    "quadratic_problem",
    "rosenbrock_problem",
    "rastrigin_problem",
    "plateau_problem",
    "__version__",
]
