"""Shared utilities: RNG plumbing, validation, and small numeric helpers.

Every stochastic component in :mod:`repro` accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy) and normalizes it
through :func:`as_generator`.  This keeps experiments exactly reproducible
while letting callers share a single generator across components when they
want correlated streams.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability",
    "pairwise_distinct",
    "weighted_average",
]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing :class:`~numpy.random.Generator` which is returned unchanged
        (so callers can share one stream across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, n: int
) -> list[np.random.Generator]:
    """Create *n* statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn` so that the children's streams
    do not overlap even for adjacent integer seeds.  Used by the cluster
    simulator to give every node its own stream while keeping the whole
    cluster reproducible from one seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    rng = as_generator(seed)
    return rng.spawn(n)


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is strictly positive; return it."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_nonnegative(name: str, value: float) -> float:
    """Validate that *value* is finite and >= 0; return it."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def check_in_range(
    name: str, value: float, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    """Validate ``lo <= value <= hi`` (or strict if ``inclusive=False``)."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not np.isfinite(value) or not ok:
        bounds = f"[{lo}, {hi}]" if inclusive else f"({lo}, {hi})"
        raise ValueError(f"{name} must lie in {bounds}, got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Validate that *value* is a probability in [0, 1)."""
    if not np.isfinite(value) or not (0.0 <= value < 1.0):
        raise ValueError(f"{name} must lie in [0, 1), got {value!r}")
    return float(value)


def pairwise_distinct(points: Iterable[Sequence[float]], *, tol: float = 0.0) -> bool:
    """Return True if no two points in *points* coincide (within *tol*)."""
    pts = [np.asarray(p, dtype=float) for p in points]
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            if np.max(np.abs(pts[i] - pts[j]), initial=0.0) <= tol:
                return False
    return True


def weighted_average(values: np.ndarray, weights: np.ndarray) -> float:
    """Weighted average that degrades gracefully when all weights vanish.

    Used by the performance database's nearest-neighbour interpolation where
    inverse-distance weights can underflow for far-away query points.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError(
            f"values and weights must have the same shape, got {values.shape} vs {weights.shape}"
        )
    if values.size == 0:
        raise ValueError("cannot average an empty value set")
    total = float(weights.sum())
    if total <= 0.0 or not np.isfinite(total):
        return float(values.mean())
    return float(np.dot(values, weights) / total)
