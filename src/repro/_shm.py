"""Shared-memory broadcast of large read-only arrays to pool workers.

The process executor pickles each worker's startup payload (the sweep's
evaluator factories) exactly once per pool.  Large numeric state — a
:class:`~repro.apps.database.PerformanceDatabase`'s configuration/value
arrays — should not travel inside that pickle at all: the parent copies it
into POSIX shared memory once, the pickle carries only ``(name, shape,
dtype)`` descriptors, and every worker attaches a zero-copy read-only view.

Protocol
--------
The parent wraps pickling in :func:`broadcasting`; while the context is
active, :func:`active_broadcast` returns the :class:`ShmBroadcast` whose
:meth:`~ShmBroadcast.export_array` an object's ``__getstate__`` may call to
swap an array for a descriptor.  ``__setstate__`` calls :func:`attach_array`
with the descriptor on the worker side.  Objects must treat attached views
as immutable and keep the returned segment handle alive for as long as the
view is referenced (dropping the handle unmaps the buffer).

The broadcast owner (the executor) is responsible for calling
:meth:`ShmBroadcast.close` only after every consumer process has exited:
``close`` unlinks the segments, which frees the memory once the last
attached process unmaps them.  Exports are registered in the creating
process only, so worker-side resource trackers never reap segments early.

The context is process-global: concurrent pools in one process would share
whichever broadcast is innermost.  Run overlapping process sweeps from
separate parent processes if segment lifetimes must not interleave.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

__all__ = [
    "ShmBroadcast",
    "active_broadcast",
    "attach_array",
    "broadcasting",
]


def _unlink_segments(segments: list[shared_memory.SharedMemory]) -> None:
    """Close and unlink every segment in *segments*, emptying the list."""
    for seg in segments:
        try:
            seg.close()
            seg.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - best effort
            pass
    segments.clear()


class ShmBroadcast:
    """Parent-side registry of shared-memory segments for one pool's lifetime.

    Segments are unlinked by :meth:`close` — or, as a safety net, by a
    ``weakref.finalize`` hook when the broadcast object is garbage
    collected or the interpreter exits.  The hook matters on the
    worker-loss path: a broken pool can leave the executor's ``map_tasks``
    generator suspended inside an exception traceback, deferring its
    ``finally`` (and hence ``close``) indefinitely; the finalizer
    guarantees the segments never outlive the broadcast object itself.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        # Bound to the list, not to self, so the finalizer holds no
        # reference that would keep the broadcast alive.
        self._finalizer = weakref.finalize(self, _unlink_segments, self._segments)

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return sum(seg.size for seg in self._segments)

    def export_array(self, arr: np.ndarray) -> dict:
        """Copy *arr* into a new segment; returns its attach descriptor.

        Raises ``OSError`` when shared memory is unavailable (e.g. a full
        ``/dev/shm``) — callers fall back to plain pickling.
        """
        arr = np.ascontiguousarray(arr)
        seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        view: np.ndarray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        self._segments.append(seg)
        return {"name": seg.name, "shape": tuple(arr.shape), "dtype": arr.dtype.str}

    def close(self) -> None:
        """Unlink every exported segment (call after all workers exited).

        Idempotent; also disarms the GC finalizer for segments already
        released here (later exports re-arm through the shared list).
        """
        _unlink_segments(self._segments)

    def __enter__(self) -> "ShmBroadcast":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_active: ShmBroadcast | None = None
_active_lock = threading.Lock()


def active_broadcast() -> ShmBroadcast | None:
    """The broadcast to export through, or None when pickling normally."""
    return _active


@contextmanager
def broadcasting(broadcast: ShmBroadcast) -> Iterator[ShmBroadcast]:
    """Make *broadcast* the active export target while the context runs."""
    global _active
    with _active_lock:
        previous, _active = _active, broadcast
    try:
        yield broadcast
    finally:
        with _active_lock:
            _active = previous


def attach_array(
    spec: dict,
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach a read-only view onto a segment exported by another process.

    Returns ``(view, segment)``; the caller must hold the segment reference
    for the view's lifetime and may ``segment.close()`` when done (never
    ``unlink`` — the exporting process owns the segment).
    """
    seg = shared_memory.SharedMemory(name=spec["name"], create=False)
    view: np.ndarray = np.ndarray(
        tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=seg.buf
    )
    view.flags.writeable = False
    return view, seg
