"""Distributed tuning fleet: coordinator-routed multi-shard serving.

A fleet is N ordinary :class:`~repro.harmony.server.TuningServer` shard
processes plus one :class:`~repro.fleet.coordinator.FleetCoordinator`
that owns the durable session/shard registry (a WAL-logged
:class:`~repro.fleet.registry.FleetRegistry`), leases shards via
heartbeats, routes clients to the shard owning their session, and
re-homes sessions from dead shards onto survivors through the per-session
checkpoint + WAL-recovery machinery — bit-identically, so a sweep that
lost a shard mid-run finishes with the same results as one that didn't.

With rebalancing enabled (``repro fleet --rebalance``), the coordinator
also migrates sessions *proactively*: shard heartbeats carry load
reports, a WAL-logged :class:`~repro.fleet.rebalance.RebalancePlanner`
detects sustained skew, and hot sessions are drained live onto quiet
shards (``export_session`` → ``adopt_session``) without losing a single
report.

Entry points: ``repro fleet`` (CLI), :class:`FleetSupervisor` (launch a
local fleet programmatically), :func:`fleet_client` (a coordinator-routed
:class:`~repro.harmony.client.TuningClient`).
"""

from repro.fleet.client import FleetResolver, fleet_client
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.launch import (
    FleetSupervisor,
    bench_space,
    session_workload,
    single_server_baseline,
    sweep_results,
)
from repro.fleet.rebalance import RebalancePlanner
from repro.fleet.registry import FleetRegistry, recover_registry
from repro.fleet.shard import ShardAgent

__all__ = [
    "FleetCoordinator",
    "FleetRegistry",
    "FleetResolver",
    "FleetSupervisor",
    "RebalancePlanner",
    "ShardAgent",
    "bench_space",
    "fleet_client",
    "recover_registry",
    "session_workload",
    "single_server_baseline",
    "sweep_results",
]
