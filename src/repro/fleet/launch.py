"""Fleet launcher: one coordinator + N shard server subprocesses.

:class:`FleetSupervisor` hosts the :class:`~repro.fleet.coordinator.
FleetCoordinator` in-process (behind a stock threaded TCP transport) and
spawns each shard as a real ``repro serve`` subprocess — the same entry
point operators run — pointed back at the coordinator with
``--coordinator host:port``.  That makes the smoke tests honest: killing
a shard is ``SIGKILL`` on a real process, not a thread we could never
half-kill, and re-homing recovers from the WAL files that process left
behind.

The module also carries the paired-seeding workload helpers the fleet
sweep, the smoke test, and the bit-identity check all share, so "fleet
run" and "single-server baseline" are the *same call sequence* by
construction.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

import repro
from repro.fleet.client import fleet_client
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.rebalance import RebalancePlanner
from repro.harmony.client import TuningClient
from repro.harmony.transport import InProcessTransport, TcpServerTransport
from repro.obs import MetricsRegistry
from repro.space import IntParameter, ParameterSpace

__all__ = [
    "FleetSupervisor",
    "bench_space",
    "session_workload",
    "sweep_results",
    "single_server_baseline",
]


def bench_space() -> ParameterSpace:
    """The serving benchmarks' tiny integer space (matches ``--workload bench``)."""
    return ParameterSpace([
        IntParameter("a", -10, 10),
        IntParameter("b", -10, 10),
    ])


def _objective(params: dict[str, float]) -> float:
    """Deterministic surrogate cost for a bench-space configuration."""
    return 1.0 + (params["a"] - 3.0) ** 2 + (params["b"] + 1.0) ** 2


def session_workload(
    client: TuningClient,
    idx: int,
    *,
    steps: int = 8,
    seed: int = 0,
    midway: Callable[[], None] | None = None,
) -> None:
    """Drive one session's sweep: lock-step steps, then two batched rounds.

    Pure function of ``(idx, seed)`` plus the assignments the server hands
    back, so running it against a fleet and against a single in-process
    server under the same seeds produces identical report streams.
    *midway* (e.g. a barrier, or the smoke test's kill trigger) runs after
    the first half of the lock-step phase.
    """
    rng = np.random.default_rng([seed, idx])
    half = steps // 2
    for step in range(steps):
        config = client.fetch()
        measure = _objective(client.as_dict(config)) * (1.0 + 0.25 * rng.random())
        client.report(measure, step=step)
        if step == half - 1 and midway is not None:
            midway()
    for step in range(2):
        configs = client.fetch_many(6)
        measures = [
            _objective(client.as_dict(c)) * (1.0 + 0.25 * rng.random())
            for c in configs
        ]
        client.report_many(measures, step=steps + step)


def sweep_results(client: TuningClient) -> dict[str, Any]:
    """The comparable end-state of a session: checkpoint + best.

    The checkpoint deliberately carries the tuner/ledger state but not
    per-client identities (nonces are random per process), so two runs
    that performed the same tuning work compare equal.
    """
    checkpoint = client._retriable(lambda: client._call({"op": "checkpoint"}))
    point, cost, ready = client.best()
    return {
        "checkpoint": checkpoint.get("snapshot"),
        "best_point": [float(x) for x in np.asarray(point).ravel()],
        "best_cost": float(cost),
        "ready": bool(ready),
    }


def single_server_baseline(
    sessions: list[str],
    *,
    tuner: str = "pro",
    seed: int = 0,
    k: int = 1,
    estimator: str = "min",
    steps: int = 8,
) -> dict[str, dict[str, Any]]:
    """Run the identical sweep against one in-process server (the oracle)."""
    from repro.harmony.server import TuningServer

    server = TuningServer(_tuner_factory(tuner, seed), binproto=False)
    results: dict[str, dict[str, Any]] = {}
    for idx, name in enumerate(sessions):
        client = TuningClient(InProcessTransport(server), session=name)
        client.open_session(name, k=k, estimator=estimator)
        client.register(bench_space())
        session_workload(client, idx, steps=steps, seed=seed)
        results[name] = sweep_results(client)
    return results


def _tuner_factory(tuner: str, seed: int) -> Callable:
    """Mirror ``repro serve``'s tuner construction (same factory helper)."""
    from repro.experiments.common import tuner_factory

    return tuner_factory(tuner, rng=seed)


class FleetSupervisor:
    """Launch and supervise a coordinator + N shard fleet on localhost."""

    def __init__(
        self,
        n_shards: int,
        *,
        base_dir: Any,
        tuner: str = "pro",
        seed: int = 0,
        k: int = 1,
        estimator: str = "min",
        transport: str = "threaded",
        wire: str = "binary",
        lease_s: float = 2.0,
        sync: str = "batch",
        wal: bool = True,
        service_delay_us: int = 0,
        reply_cache: int | None = None,
        max_pending: int | None = None,
        host: str = "127.0.0.1",
        coordinator_port: int = 0,
        start_timeout: float = 60.0,
        rebalance: Any = False,
        join: list[tuple[str, int]] | None = None,
    ) -> None:
        #: externally launched shards to await instead of spawning our own
        #: (``repro fleet --join HOST:PORT``); each must be a ``repro serve
        #: --coordinator`` process pointed at this coordinator's address.
        self.join = [(str(h), int(p)) for h, p in join] if join else None
        if self.join is not None:
            n_shards = len(self.join)
        if n_shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.n_shards = int(n_shards)
        self.base = Path(base_dir)
        self.base.mkdir(parents=True, exist_ok=True)
        self.host = host
        self._opts = dict(
            tuner=tuner, seed=int(seed), k=int(k), estimator=estimator,
            transport=transport, wire=wire, sync=sync, wal=bool(wal),
            service_delay_us=int(service_delay_us), reply_cache=reply_cache,
            max_pending=max_pending,
        )
        self.seed = int(seed)
        self._start_timeout = float(start_timeout)
        self.metrics = MetricsRegistry()
        if rebalance is True:
            planner = RebalancePlanner()
        elif rebalance:
            planner = rebalance  # a pre-configured RebalancePlanner
        else:
            planner = None
        self.planner = planner
        self.coordinator = FleetCoordinator(
            _tuner_factory(tuner, int(seed)),
            lease_s=float(lease_s),
            wal_dir=self.base / "coordinator-wal",
            sync=sync,
            metrics=self.metrics,
            rebalance=planner,
        )
        self._server = TcpServerTransport(
            self.coordinator, host=host, port=int(coordinator_port)
        )
        self.coordinator_port: int | None = None
        self._procs: dict[int, subprocess.Popen] = {}
        self._logs: list[Any] = []

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Start the coordinator transport and all shard subprocesses.

        In ``join`` mode no subprocesses are spawned — the call blocks
        until the externally launched shards have registered (they retry
        registration, so they may be started before or after this).
        """
        self._server.start()
        self.coordinator_port = self._server.port
        self.coordinator.start_lease_checker()
        if self.join is None:
            for i in range(self.n_shards):
                self._spawn_shard(i)
        self._wait_for_shards(self.n_shards)
        return self.host, self.coordinator_port

    def _shard_cmd(self, i: int, port_file: Path) -> list[str]:
        opts = self._opts
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--workload", "bench",
            "--transport", opts["transport"],
            "--wire", opts["wire"],
            "--host", self.host,
            "--port", "0",
            "--port-file", str(port_file),
            "--tuner", opts["tuner"],
            "--seed", str(opts["seed"]),
            "--k", str(opts["k"]),
            "--estimator", opts["estimator"],
            "--coordinator", f"{self.host}:{self.coordinator_port}",
            "--shard-id", str(i),
        ]
        if opts["wal"]:
            cmd += ["--wal-dir", str(self.base / f"shard-{i}-wal"),
                    "--sync", opts["sync"]]
        if opts["service_delay_us"]:
            cmd += ["--service-delay-us", str(opts["service_delay_us"])]
        if opts["reply_cache"] is not None:
            cmd += ["--reply-cache", str(opts["reply_cache"])]
        if opts["max_pending"] is not None:
            cmd += ["--max-pending", str(opts["max_pending"])]
        return cmd

    def _spawn_shard(self, i: int) -> None:
        port_file = self.base / f"shard-{i}.port"
        port_file.unlink(missing_ok=True)
        log = open(self.base / f"shard-{i}.log", "ab")
        self._logs.append(log)
        env = dict(os.environ)
        src = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._procs[i] = subprocess.Popen(
            self._shard_cmd(i, port_file), stdout=log, stderr=log, env=env
        )

    def _wait_for_shards(self, n_alive: int) -> None:
        deadline = time.monotonic() + self._start_timeout
        while time.monotonic() < deadline:
            status = self.coordinator.handle({"op": "fleet_status"})
            alive = [
                s for s, info in status.get("shards", {}).items()
                if info["alive"]
            ]
            if len(alive) >= n_alive:
                return
            for i, proc in self._procs.items():
                if proc.poll() is not None and proc.returncode not in (0, None):
                    raise RuntimeError(
                        f"shard {i} exited with {proc.returncode} before "
                        f"registering (see {self.base / f'shard-{i}.log'})"
                    )
            time.sleep(0.05)
        raise TimeoutError(
            f"only {len(alive)}/{n_alive} shards registered within "
            f"{self._start_timeout}s"
        )

    def kill_shard(self, i: int, sig: int = signal.SIGKILL) -> None:
        """Kill shard *i*'s process (default SIGKILL: no cleanup, no flush)."""
        proc = self._procs.get(i)
        if proc is None or proc.poll() is not None:
            return
        proc.send_signal(sig)
        proc.wait(timeout=10.0)

    def stop(self) -> None:
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs.values():
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=10.0)
        self._procs.clear()
        self._server.stop()
        self.coordinator.stop()
        for log in self._logs:
            log.close()
        self._logs.clear()

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- conveniences --------------------------------------------------------------

    def client(self, session: str, *, pipelined: bool = False) -> TuningClient:
        assert self.coordinator_port is not None, "call start() first"
        return fleet_client(
            self.host, self.coordinator_port, session, pipelined=pipelined
        )

    def fleet_status(self) -> dict:
        return self.coordinator.handle({"op": "fleet_status"})

    def run_sweep(
        self, sessions: list[str], *, steps: int = 8
    ) -> dict[str, dict[str, Any]]:
        """Run the paired-seeding workload over *sessions*, one at a time."""
        results: dict[str, dict[str, Any]] = {}
        for idx, name in enumerate(sessions):
            client = self.client(name)
            client.open_session(name, k=self._opts["k"],
                                estimator=self._opts["estimator"])
            client.register(bench_space())
            session_workload(client, idx, steps=steps, seed=self.seed)
            results[name] = sweep_results(client)
            client.transport.close()
        return results
