"""Load-aware rebalancing: a deterministic migration-planning state machine.

PR 8 gave the fleet a *reactive* placement story: when a shard dies, the
coordinator adopts its sessions elsewhere.  This module adds the
*proactive* half — when one shard is merely **hot** (sessions whose tuning
loops hammer it while its peers idle), the coordinator drains the hottest
sessions onto quiet shards while everything keeps running.

:class:`RebalancePlanner` is the brain, and it follows the same discipline
as :class:`repro.fleet.registry.FleetRegistry` and
:class:`repro.harmony.admission.AdmissionController`: a *pure command
machine*.  Every input — load observations, planning requests, migration
completions — is a JSON-compatible command applied through
:meth:`RebalancePlanner.apply`, and nothing inside ``apply`` reads a clock
or makes a nondeterministic choice.  Time is an internal ``tick`` counter
that advances one step per ``observe`` command.  That makes the planner a
pure function of its command stream: the coordinator WAL-logs every
command as ``{"t": "plan", "c": {...}}`` alongside the registry's
``fleet`` records, and a crash-restart replays the log into the identical
planner state (property-tested in
``tests/fleet/test_rebalance_properties.py``).

Command vocabulary (the ``"c"`` field)::

    observe   {"c","shards": {shard: {session: rate}}} — one load sample
              per live shard (per-session smoothed request rates from the
              shard agents' heartbeat load reports).  Advances the tick,
              expires cooldowns, and updates the hot-shard streak.
    plan      {"c"} — ask for migrations.  Returns ``{"moves": [...]}``;
              empty unless the same shard has been skewed for
              ``hysteresis`` consecutive observations.  Each planned move
              is tracked as *in flight* until its ``complete`` arrives.
    complete  {"c","session","ok"} — a migration finished (or failed).
              Pops the in-flight entry; successful moves put the session
              in cooldown for ``cooldown`` ticks so it cannot ping-pong.

Skew detection: a shard is *hot* when its total observed rate is at least
``min_load`` and exceeds ``skew_ratio`` times the median of the other
shards' totals.  Hysteresis (the same shard must stay hot for
``hysteresis`` observations) keeps one bursty sample from triggering a
migration storm; planning resets the streak so the planner re-observes
the post-move world before acting again.

Move selection is greedy and deterministic: candidate sessions on the hot
shard are taken in descending ``(rate, name)`` order (heaviest first —
moving the hottest session closes the gap fastest), skipping sessions
already in flight, in cooldown, or with zero observed rate (nothing to
gain, and zero-rate sessions include ones the observer has no data for).
Each candidate goes to the projected-least-loaded other shard, and only
if the move actually shrinks the hot shard's lead; at most ``max_moves``
moves per plan and ``max_concurrent`` migrations in flight overall.
"""

from __future__ import annotations

from statistics import median
from typing import Any, Mapping

__all__ = ["RebalancePlanner"]


class RebalancePlanner:
    """Deterministic skew detector and migration planner.

    Not thread-safe by itself — the coordinator serializes ``apply``
    calls under its own lock, which also fixes the WAL record order.

    Parameters
    ----------
    skew_ratio:
        A shard is hot when its total rate exceeds this multiple of the
        median of the other live shards' totals (> 1).
    min_load:
        Ignore skew below this absolute total rate (units match the
        observed rates, e.g. requests/second); keeps an idle fleet with
        one trickling session from "rebalancing" noise.
    hysteresis:
        Consecutive observations the same shard must stay hot before
        ``plan`` produces moves (>= 1).
    cooldown:
        Ticks a successfully moved session is excluded from further
        moves (>= 0) — the anti-ping-pong guard.
    max_moves:
        Upper bound on moves returned by a single ``plan`` (>= 1).
    max_concurrent:
        Upper bound on migrations in flight at any moment (>= 1).
    """

    def __init__(
        self,
        *,
        skew_ratio: float = 2.0,
        min_load: float = 1.0,
        hysteresis: int = 2,
        cooldown: int = 5,
        max_moves: int = 3,
        max_concurrent: int = 3,
    ) -> None:
        if skew_ratio <= 1.0:
            raise ValueError(f"skew_ratio must be > 1, got {skew_ratio}")
        if min_load < 0.0:
            raise ValueError(f"min_load must be >= 0, got {min_load}")
        if hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if max_moves < 1:
            raise ValueError(f"max_moves must be >= 1, got {max_moves}")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.skew_ratio = float(skew_ratio)
        self.min_load = float(min_load)
        self.hysteresis = int(hysteresis)
        self.cooldown = int(cooldown)
        self.max_moves = int(max_moves)
        self.max_concurrent = int(max_concurrent)
        #: observation counter; the planner's only notion of time
        self.tick = 0
        #: the shard currently on a hot streak (None = no streak)
        self.hot_shard: int | None = None
        #: consecutive observations :attr:`hot_shard` has been hot
        self.hot_streak = 0
        #: the latest observation: shard id -> {session: rate}
        self.last_obs: dict[int, dict[str, float]] | None = None
        #: session -> {"src", "dst"} for migrations awaiting ``complete``
        self.inflight: dict[str, dict[str, int]] = {}
        #: session -> tick until which it may not move again
        self.cooldown_until: dict[str, int] = {}

    # -- the command interpreter --------------------------------------------------

    def apply(self, cmd: Mapping[str, Any]) -> dict[str, Any]:
        """Apply one command; returns ``{"applied": bool, ...}``.

        Deterministic: the result (and the state transition) depends only
        on the current state and the command's own fields.  Unknown
        commands raise ``ValueError`` — a corrupt record, not a race.
        """
        kind = cmd.get("c")
        if kind == "observe":
            return self._observe(cmd)
        if kind == "plan":
            return self._plan()
        if kind == "complete":
            return self._complete(cmd)
        raise ValueError(f"unknown rebalance command {kind!r}")

    def _observe(self, cmd: Mapping[str, Any]) -> dict[str, Any]:
        self.tick += 1
        shards = {
            int(shard): {str(n): float(r) for n, r in (rates or {}).items()}
            for shard, rates in cmd.get("shards", {}).items()
        }
        self.last_obs = shards
        self.cooldown_until = {
            name: until
            for name, until in self.cooldown_until.items()
            if until > self.tick
        }
        totals = {s: sum(rates.values()) for s, rates in shards.items()}
        hot: int | None = None
        if len(totals) >= 2:
            # deterministic argmax: highest total, ties to the lowest id
            candidate = max(totals, key=lambda s: (totals[s], -s))
            others = [totals[s] for s in totals if s != candidate]
            if (
                totals[candidate] >= self.min_load
                and totals[candidate] > self.skew_ratio * median(others)
            ):
                hot = candidate
        if hot is None:
            self.hot_shard = None
            self.hot_streak = 0
        elif hot == self.hot_shard:
            self.hot_streak += 1
        else:
            self.hot_shard = hot
            self.hot_streak = 1
        return {
            "applied": True,
            "tick": self.tick,
            "hot": self.hot_shard,
            "streak": self.hot_streak,
        }

    def _plan(self) -> dict[str, Any]:
        hot = self.hot_shard
        if (
            self.last_obs is None
            or hot is None
            or self.hot_streak < self.hysteresis
        ):
            return {"applied": False, "moves": []}
        budget = min(self.max_moves, self.max_concurrent - len(self.inflight))
        if budget <= 0:
            return {"applied": False, "moves": []}
        movable = sorted(
            (
                (rate, name)
                for name, rate in self.last_obs.get(hot, {}).items()
                if rate > 0.0
                and name not in self.inflight
                and name not in self.cooldown_until
            ),
            key=lambda pair: (-pair[0], pair[1]),
        )
        proj = {s: sum(r.values()) for s, r in self.last_obs.items()}
        moves: list[dict[str, Any]] = []
        for rate, name in movable:
            if len(moves) >= budget:
                break
            targets = [s for s in proj if s != hot]
            if not targets:
                break
            dst = min(targets, key=lambda s: (proj[s], s))
            if proj[dst] + rate >= proj[hot]:
                # moving this session would just relocate the hot spot
                continue
            moves.append({"session": name, "src": hot, "dst": dst, "rate": rate})
            proj[hot] -= rate
            proj[dst] += rate
            self.inflight[name] = {"src": hot, "dst": dst}
        if moves:
            # force a fresh hysteresis window so the next plan sees the
            # post-migration world instead of acting on stale skew
            self.hot_shard = None
            self.hot_streak = 0
        return {"applied": bool(moves), "moves": moves}

    def _complete(self, cmd: Mapping[str, Any]) -> dict[str, Any]:
        name = str(cmd["session"])
        entry = self.inflight.pop(name, None)
        if entry is None:
            return {"applied": False}
        if bool(cmd.get("ok", True)) and self.cooldown > 0:
            self.cooldown_until[name] = self.tick + self.cooldown
        return {"applied": True}

    # -- snapshots ----------------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """JSON-compatible full state (rides in the coordinator snapshot)."""
        return {
            "tick": self.tick,
            "hot_shard": self.hot_shard,
            "hot_streak": self.hot_streak,
            "last_obs": (
                {
                    str(shard): dict(sorted(rates.items()))
                    for shard, rates in sorted(self.last_obs.items())
                }
                if self.last_obs is not None
                else None
            ),
            "inflight": {
                name: dict(move) for name, move in sorted(self.inflight.items())
            },
            "cooldown_until": dict(sorted(self.cooldown_until.items())),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Rebuild from a :meth:`state_dict` snapshot."""
        self.tick = int(state.get("tick", 0))
        hot = state.get("hot_shard")
        self.hot_shard = int(hot) if hot is not None else None
        self.hot_streak = int(state.get("hot_streak", 0))
        obs = state.get("last_obs")
        self.last_obs = (
            {
                int(shard): {str(n): float(r) for n, r in rates.items()}
                for shard, rates in obs.items()
            }
            if obs is not None
            else None
        )
        self.inflight = {
            str(name): {"src": int(move["src"]), "dst": int(move["dst"])}
            for name, move in state.get("inflight", {}).items()
        }
        self.cooldown_until = {
            str(name): int(until)
            for name, until in state.get("cooldown_until", {}).items()
        }
