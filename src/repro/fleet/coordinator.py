"""The fleet coordinator: durable session routing, leases, and re-homing.

One coordinator process owns the :class:`~repro.fleet.registry.FleetRegistry`
(durably, through the same WAL machinery the serving stack uses) and speaks
the ordinary dict-message protocol, so it sits behind the stock TCP
transports unchanged.  Shard :class:`~repro.harmony.server.TuningServer`
processes register with it and renew leases with heartbeats; clients ask it
``locate`` and get redirected to the shard that owns (or is newly assigned)
their session.

**Ops** (see ``docs/API.md`` "Fleet" for the full table)::

    register_shard   a shard announces {host, port, wal_dir}; the response
                     carries its shard id and the lease duration
    heartbeat        renew the lease; ``alive: false`` in the response
                     tells a shard its lease was revoked (it must stop
                     serving — its sessions have been re-homed)
    locate           resolve a session name to a shard address; unowned
                     sessions are assigned to the least-loaded live shard.
                     An ``unreachable: <shard>`` hint (sent by a client
                     whose dial failed) triggers an immediate TCP probe,
                     so a dead shard is detected at client speed instead
                     of lease speed
    fleet_status     registry summary (shards, liveness, ownership)
    expire_shard     operator/test hook: revoke a lease now
    metrics          MetricsRegistry snapshot (like the tuning server's)

**Re-homing.**  When a shard's lease expires (or a probe finds it dead),
its sessions are recovered *by the coordinator* from the shard's WAL
directory (:func:`repro.harmony.wal.recover_server` — shared storage is
assumed, as in any one-box or NFS fleet), serialized with the per-session
``state_dict`` machinery, and pushed to surviving shards with the
``adopt_session`` op.  Because the state dict carries the tuner, the
in-flight batch, and the per-client exactly-once state, a client that
reconnects (re-resolving through ``locate``) resumes against the survivor
bit-identically — the same guarantee the single-server crash battery
proves, lifted to the fleet.  Shards without a WAL directory re-home as
*fresh* sessions (available, but with search state lost).

**Rebalancing.**  With a :class:`~repro.fleet.rebalance.RebalancePlanner`
attached, the coordinator also moves sessions *proactively*: shard
heartbeats carry load reports (per-session smoothed request rates), the
planner detects sustained skew, and the coordinator drains the hottest
sessions onto quiet shards with the ``export_session`` → ``adopt_session``
live-migration pair (see :meth:`FleetCoordinator._migrate_locked`).  The
source quiesces the session under its lock and hands over the full state
dict — tuner, in-flight batch, reply caches, nonces — so the move is
lossless and exactly-once survives it; clients chasing the source's
``moved`` tombstone re-resolve through ``locate`` and land on the new
owner.  Planner commands are WAL-logged as ``{"t": "plan", "c": ...}``
records in the registry WAL, so a coordinator restart recovers the
planner (cooldowns, hysteresis streak) along with the ownership map.

Session-addressed ops sent to the coordinator by mistake are answered with
an ``ok: false`` response carrying a ``redirect`` field, which the client
surfaces as :class:`repro.harmony.client.ServerRedirect`.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Mapping

from repro.fleet.registry import FleetRegistry, recover_registry
from repro.harmony.protocol import error_response, redirect_response

__all__ = ["FleetCoordinator"]

#: session-addressed ops the coordinator answers with a redirect error
_SESSION_OPS = frozenset({
    "register", "fetch", "report", "best", "status", "requeue",
    "checkpoint", "restore", "open_session",
})


class FleetCoordinator:
    """Routes tuning sessions across registered shard servers.

    Duck-typed like a :class:`~repro.harmony.server.TuningServer` where the
    transports care (``handle`` / ``commit_wal`` / ``flush_wal``), so it is
    hosted behind :class:`~repro.harmony.transport.TcpServerTransport` or
    the asyncio transport unchanged.  *tuner_factory* / *plan* must match
    what the shard servers were launched with — they are what
    :func:`~repro.harmony.wal.recover_server` needs to resurrect a dead
    shard's sessions for migration.  *clock* is injectable for tests; all
    lease arithmetic goes through it.
    """

    def __init__(
        self,
        tuner_factory: Callable | None = None,
        *,
        plan: Any | None = None,
        lease_s: float = 5.0,
        wal_dir: Any | None = None,
        sync: str = "batch",
        metrics: Any | None = None,
        tracer: Any | None = None,
        probe_timeout: float = 0.25,
        adopt_timeout: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        admission: Any | None = None,
        rebalance: Any | None = None,
    ) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        self._tuner_factory = tuner_factory
        self._plan = plan
        #: optional :class:`~repro.fleet.rebalance.RebalancePlanner`
        self.planner = rebalance
        #: optional :class:`~repro.harmony.admission.AdmissionController`;
        #: the serving transports enforce it in front of :meth:`handle`
        self.admission = admission
        self.lease_s = float(lease_s)
        self.metrics = metrics
        self.tracer = tracer
        self.probe_timeout = float(probe_timeout)
        self.adopt_timeout = float(adopt_timeout)
        self._clock = clock
        self._lock = threading.RLock()
        self._wal: Any | None = None
        self._checker: threading.Thread | None = None
        self._checker_stop = threading.Event()
        if wal_dir is not None:
            self.registry, self._wal, stats = recover_registry(
                wal_dir, sync=sync, planner=self.planner,
            )
            # Migrations in flight when the old process died never finished
            # their transfer; mark them failed so the planner can try again.
            if self.planner is not None:
                for name in sorted(self.planner.inflight):
                    self._apply_plan({"c": "complete", "session": name, "ok": False})
            # Restart grace: the old process's monotonic lease clocks are
            # meaningless here, so every shard that was alive gets one fresh
            # lease (logged, so a replay of this log is still deterministic)
            # and must prove itself with a heartbeat before it expires.
            now = self._clock()
            for shard in self.registry.alive_shards():
                self._apply({
                    "c": "heartbeat", "shard": shard, "until": now + self.lease_s,
                })
            if stats.get("replayed") or stats.get("records"):
                self._emit(
                    "wal.recover",
                    records=int(stats.get("replayed", 0)),
                    snapshot=stats.get("records", 0) > stats.get("replayed", 0),
                    torn=stats.get("torn") is not None,
                    sessions=sorted(self.registry.sessions),
                )
        else:
            self.registry = FleetRegistry()

    # -- observability ------------------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.emit(kind, **fields)

    def _inc(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, by)

    def observe_shed(self, n_msgs: int) -> None:
        """Transport hook: *n_msgs* messages were refused with ``busy``."""
        self._inc("fleet.shed_msgs", n_msgs)
        self._inc("fleet.shed_events")

    # -- the logged mutation path --------------------------------------------------

    def _snapshot_state(self) -> dict:
        """What a WAL snapshot record carries: registry (+ planner) state."""
        if self.planner is None:
            return self.registry.state_dict()
        return {
            "registry": self.registry.state_dict(),
            "planner": self.planner.state_dict(),
        }

    def _apply(self, cmd: dict) -> dict:
        """Apply one registry command and append it to the WAL (if attached).

        Ignored commands (``applied: False``) are *not* logged — they did
        not change state, and logging them would make the log replay
        sensitive to races that never mutated anything.
        """
        result = self.registry.apply(cmd)
        if result.get("applied") and self._wal is not None:
            self._wal.append({"t": "fleet", "c": cmd})
            if self._wal.should_snapshot():
                self._wal.snapshot(self._snapshot_state())
        return result

    def _apply_plan(self, cmd: dict) -> dict:
        """Apply one planner command and append it to the WAL (if attached)."""
        result = self.planner.apply(cmd)
        if result.get("applied") and self._wal is not None:
            self._wal.append({"t": "plan", "c": cmd})
            if self._wal.should_snapshot():
                self._wal.snapshot(self._snapshot_state())
        return result

    # -- WAL surface the transports expect ----------------------------------------

    def commit_wal(self) -> None:
        if self._wal is not None:
            self._wal.commit()

    def flush_wal(self) -> None:
        if self._wal is not None:
            self._wal.flush()

    def close_wal(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    # -- lease expiry --------------------------------------------------------------

    def start_lease_checker(self, interval: float | None = None) -> None:
        """Run :meth:`check_leases` on a daemon thread every *interval* s."""
        if self._checker is not None:
            return
        interval = interval if interval is not None else self.lease_s / 4.0
        self._checker_stop.clear()

        def loop() -> None:
            while not self._checker_stop.wait(max(0.01, interval)):
                try:
                    self.check_leases()
                except Exception:  # pragma: no cover - keep the checker alive
                    pass
                try:
                    self.check_rebalance()
                except Exception:  # pragma: no cover - keep the checker alive
                    pass

        self._checker = threading.Thread(target=loop, daemon=True)
        self._checker.start()

    def stop(self) -> None:
        """Stop the lease checker and close the registry WAL."""
        self._checker_stop.set()
        if self._checker is not None:
            self._checker.join(timeout=2.0)
            self._checker = None
        self.close_wal()

    def check_leases(self, now: float | None = None) -> list[int]:
        """Expire (and re-home) every shard whose lease ran out; returns them."""
        now = self._clock() if now is None else now
        with self._lock:
            expired = self.registry.expired(now)
            for shard in expired:
                self._expire_and_rehome(shard)
            return expired

    def _probe_shard(self, shard: int) -> None:
        """TCP-probe a supposedly-live shard; expire + re-home it if dead."""
        with self._lock:
            info = self.registry.shards.get(shard)
            if info is None or not info["alive"]:
                return
            try:
                socket.create_connection(
                    (info["host"], info["port"]), timeout=self.probe_timeout
                ).close()
            except OSError:
                self._inc("fleet.probe_failures")
                self._expire_and_rehome(shard)

    # -- re-homing ----------------------------------------------------------------

    def _recover_shard_states(
        self, wal_dir: Any, sessions: list[str]
    ) -> dict[str, dict]:
        """Resurrect a dead shard's sessions from its WAL; name -> state_dict."""
        if wal_dir is None or self._tuner_factory is None or not sessions:
            return {}
        from repro.harmony.wal import recover_server

        try:
            recovered = recover_server(
                self._tuner_factory, wal_dir, plan=self._plan, binproto=False,
            )
        except Exception:  # pragma: no cover - unreadable WAL: re-home fresh
            return {}
        states: dict[str, dict] = {}
        try:
            for name in sessions:
                session = recovered.session(name)
                if session is not None and session.can_snapshot():
                    states[name] = session.state_dict()
        finally:
            recovered.close_wal()
        return states

    def _expire_and_rehome(self, shard: int) -> None:
        """Revoke *shard*'s lease and migrate its sessions to survivors.

        Caller holds (or this method takes) the coordinator lock for the
        whole migration, so a concurrent ``locate`` never observes a
        half-moved session.  Sessions whose state cannot be recovered (no
        WAL directory) are re-homed *fresh* — reachable again, but their
        search restarts.  With no surviving shard the mappings stay put;
        a later ``locate`` retries the migration once a shard is back.
        """
        from repro.harmony.transport import TcpClientTransport

        with self._lock:
            info = self.registry.shards.get(shard)
            if info is None or not info["alive"]:
                return
            self._apply({"c": "expire", "shard": shard})
            self._inc("fleet.expired_shards")
            sessions = self.registry.sessions_on(shard)
            self._emit("fleet.expire", shard=shard, sessions=sessions)
            if not sessions or not self.registry.alive_shards():
                return
            states = self._recover_shard_states(info.get("wal_dir"), sessions)
            transports: dict[int, Any] = {}
            try:
                for name in sessions:
                    target = self.registry.least_loaded()
                    if target is None:  # pragma: no cover - all died mid-move
                        break
                    transport = transports.get(target)
                    if transport is None:
                        tinfo = self.registry.shards[target]
                        try:
                            transport = TcpClientTransport(
                                tinfo["host"], tinfo["port"],
                                timeout=self.adopt_timeout,
                            )
                        except OSError:
                            # The target is gone too; probe it on its own
                            # (which re-homes *its* sessions) and move on.
                            self._probe_shard(target)
                            continue
                        transports[target] = transport
                    state = states.get(name)
                    message = (
                        {"op": "adopt_session", "session": name, "state": state}
                        if state is not None
                        else {"op": "open_session", "session": name}
                    )
                    try:
                        response = transport.request(message)
                    except (OSError, ConnectionError):
                        self._probe_shard(target)
                        continue
                    if not response.get("ok", False):
                        continue
                    self._apply({"c": "rehome", "session": name, "shard": target})
                    self._inc(
                        "fleet.rehomed_sessions" if state is not None
                        else "fleet.lost_sessions"
                    )
                    self._emit(
                        "fleet.rehome", session=name, shard=target,
                        src_shard=shard, recovered=state is not None,
                    )
            finally:
                for transport in transports.values():
                    try:
                        transport.close()
                    except Exception:  # pragma: no cover
                        pass

    # -- proactive rebalancing ----------------------------------------------------

    def _observe_command(self) -> dict[str, Any]:
        """Build the planner's ``observe`` command from registry state.

        Caller holds the lock.  Each live shard contributes its owned
        sessions' smoothed rates from the latest heartbeat load report;
        sessions the report has no number for count as zero (present so
        shard totals and ownership stay consistent for the planner).
        """
        shards: dict[str, dict[str, float]] = {}
        for shard in self.registry.alive_shards():
            load = self.registry.shard_load(shard) or {}
            rates = load.get("session_rps") or {}
            shards[str(shard)] = {
                name: float(rates.get(name, 0.0))
                for name in self.registry.sessions_on(shard)
            }
        return {"c": "observe", "shards": shards}

    def check_rebalance(self) -> list[dict[str, Any]]:
        """One planner cycle: observe load, plan, and execute migrations.

        Called from the lease-checker thread (and directly by tests).
        Returns the moves attempted this cycle.  A no-op without an
        attached planner or with fewer than two live shards.
        """
        if self.planner is None:
            return []
        with self._lock:
            if len(self.registry.alive_shards()) < 2:
                return []
            self._apply_plan(self._observe_command())
            moves = self._apply_plan({"c": "plan"})["moves"]
            for move in moves:
                ok = self._migrate_locked(
                    move["session"], int(move["src"]), int(move["dst"])
                )
                self._apply_plan({
                    "c": "complete", "session": move["session"], "ok": ok,
                })
            if self.metrics is not None:
                self.metrics.gauge(
                    "fleet.inflight_migrations", len(self.planner.inflight)
                )
                self.metrics.gauge("fleet.hot_streak", self.planner.hot_streak)
            return moves

    def _migrate_locked(self, session: str, src: int, dst: int) -> bool:
        """Drain-and-move *session* from live shard *src* to live shard *dst*.

        Caller holds the coordinator lock, so no ``locate`` observes the
        move half-done.  The source's ``export_session`` quiesces the
        session (new requests there get a ``moved`` tombstone) and returns
        its full state dict; ``adopt_session`` on the destination restores
        it; then the registry re-homes.  If the destination refuses, the
        state is adopted straight back onto the source so nothing is lost.
        """
        from repro.harmony.transport import TcpClientTransport

        src_info = self.registry.shards.get(src)
        dst_info = self.registry.shards.get(dst)
        if (
            src_info is None or not src_info["alive"]
            or dst_info is None or not dst_info["alive"]
            or self.registry.owner(session) != src
        ):
            return False
        state = None
        src_transport = None
        try:
            try:
                src_transport = TcpClientTransport(
                    src_info["host"], src_info["port"], timeout=self.adopt_timeout,
                )
                response = src_transport.request(
                    {"op": "export_session", "session": session}
                )
            except (OSError, ConnectionError):
                self._inc("fleet.migration_failures")
                self._probe_shard(src)
                return False
            if not response.get("ok", False):
                # Busy batch, unknown session, … — not movable right now.
                self._inc("fleet.migration_failures")
                return False
            state = response.get("state")
            try:
                with TcpClientTransport(
                    dst_info["host"], dst_info["port"], timeout=self.adopt_timeout,
                ) as dst_transport:
                    adopted = dst_transport.request({
                        "op": "adopt_session", "session": session, "state": state,
                    })
            except (OSError, ConnectionError):
                adopted = {"ok": False}
            if not adopted.get("ok", False):
                # Destination refused: put the session back where it was.
                self._inc("fleet.migration_failures")
                try:
                    src_transport.request({
                        "op": "adopt_session", "session": session, "state": state,
                    })
                except (OSError, ConnectionError):  # pragma: no cover - src died
                    self._probe_shard(src)
                self._probe_shard(dst)
                return False
            self._apply({"c": "rehome", "session": session, "shard": dst})
            self._inc("fleet.migrations")
            self._emit(
                "fleet.migrate", session=session, src_shard=src, dst_shard=dst,
            )
            return True
        finally:
            if src_transport is not None:
                try:
                    src_transport.close()
                except Exception:  # pragma: no cover
                    pass

    # -- routing ------------------------------------------------------------------

    def locate(self, session: str) -> tuple[int, str, int]:
        """Resolve *session* to ``(shard, host, port)``, assigning if new.

        The binary wire's LOCATE frame calls this directly; the dict op
        wraps it.  Raises ``LookupError`` when no live shard can take the
        session.
        """
        if not session:
            raise LookupError("locate needs a non-empty session name")
        with self._lock:
            owner = self.registry.owner(session)
            if owner is not None and not self.registry.is_alive(owner):
                # The owner died between heartbeats; migrate its sessions
                # now rather than waiting for the lease checker.
                self._expire_and_rehome(owner)
                owner = self.registry.owner(session)
                if owner is not None and not self.registry.is_alive(owner):
                    owner = None  # unrecoverable for now: assign fresh below
            if owner is None:
                owner = self.registry.least_loaded()
                if owner is None:
                    raise LookupError("no live shards registered")
                self._apply({"c": "assign", "session": session, "shard": owner})
                self._emit("fleet.locate", session=session, shard=owner)
            info = self.registry.shards[owner]
            self._inc("fleet.locates")
            return owner, info["host"], info["port"]

    # -- the dict-protocol entry point ---------------------------------------------

    def handle(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Process one protocol message (the transports' entry point)."""
        try:
            return self._route(message)
        except Exception as exc:  # protocol boundary: never let it die
            return error_response(f"{type(exc).__name__}: {exc}")

    def _route(self, message: Mapping[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "register_shard":
            return self._op_register_shard(message)
        if op == "heartbeat":
            return self._op_heartbeat(message)
        if op == "locate":
            return self._op_locate(message)
        if op == "fleet_status":
            return self._op_fleet_status()
        if op == "expire_shard":
            with self._lock:
                self._expire_and_rehome(int(message["shard"]))
            return {"ok": True, "shard": int(message["shard"])}
        if op == "migrate_session":
            return self._op_migrate_session(message)
        if op == "metrics":
            if self.metrics is None:
                return error_response("metrics collection is not enabled")
            return {"ok": True, "metrics": self.metrics.snapshot()}
        if op in _SESSION_OPS:
            return self._op_session_redirect(op, message)
        return error_response(f"unknown coordinator op {op!r}")

    def _op_register_shard(self, message: Mapping[str, Any]) -> dict[str, Any]:
        host = message.get("host")
        port = message.get("port")
        if not isinstance(host, str) or not host or port is None:
            return error_response("register_shard needs 'host' and 'port'")
        with self._lock:
            shard = message.get("shard")
            shard = self.registry.next_shard_id() if shard is None else int(shard)
            wal_dir = message.get("wal_dir")
            self._apply({
                "c": "register", "shard": shard, "host": host,
                "port": int(port),
                "wal_dir": str(wal_dir) if wal_dir is not None else None,
                "until": self._clock() + self.lease_s,
            })
        self._inc("fleet.shard_registrations")
        if self.metrics is not None:
            self.metrics.gauge(
                "fleet.alive_shards", len(self.registry.alive_shards())
            )
        self._emit("fleet.register", shard=shard, host=host, port=int(port))
        return {"ok": True, "shard": shard, "lease_s": self.lease_s}

    def _op_heartbeat(self, message: Mapping[str, Any]) -> dict[str, Any]:
        shard = message.get("shard")
        if shard is None:
            return error_response("heartbeat needs a 'shard' id")
        cmd = {
            "c": "heartbeat", "shard": int(shard),
            "until": self._clock() + self.lease_s,
        }
        load = message.get("load")
        if isinstance(load, Mapping):
            cmd["load"] = dict(load)
        with self._lock:
            result = self._apply(cmd)
        self._inc("fleet.heartbeats")
        # ``alive: false`` = the lease was revoked (expiry or probe); the
        # shard must stop serving — its sessions live elsewhere now.
        return {"ok": True, "alive": bool(result["applied"]),
                "lease_s": self.lease_s}

    def _op_locate(self, message: Mapping[str, Any]) -> dict[str, Any]:
        session = message.get("session")
        if not isinstance(session, str) or not session:
            return error_response("locate needs a non-empty 'session' name")
        hint = message.get("unreachable")
        if hint is not None:
            self._probe_shard(int(hint))
        shard, host, port = self.locate(session)
        return redirect_response(shard, host, port)

    def _op_migrate_session(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Operator/test hook: move one session to a named shard now."""
        session = message.get("session")
        if not isinstance(session, str) or not session:
            return error_response("migrate_session needs a 'session' name")
        if message.get("shard") is None:
            return error_response("migrate_session needs a target 'shard' id")
        dst = int(message["shard"])
        with self._lock:
            src = self.registry.owner(session)
            if src is None:
                return error_response(f"session {session!r} is not assigned")
            if src == dst:
                return {"ok": True, "session": session, "shard": dst,
                        "moved": False}
            moved = self._migrate_locked(session, src, dst)
        if not moved:
            return error_response(
                f"could not migrate session {session!r} to shard {dst}"
            )
        return {"ok": True, "session": session, "shard": dst, "moved": True}

    def _op_fleet_status(self) -> dict[str, Any]:
        with self._lock:
            now = self._clock()
            shards = {
                str(shard): {
                    "host": info["host"],
                    "port": info["port"],
                    "alive": info["alive"],
                    "lease_remaining_s": round(max(0.0, info["until"] - now), 3),
                    "sessions": len(self.registry.sessions_on(shard)),
                }
                for shard, info in sorted(self.registry.shards.items())
            }
            sessions = dict(sorted(self.registry.sessions.items()))
            status = {"ok": True, "lease_s": self.lease_s,
                      "shards": shards, "sessions": sessions}
            if self.planner is not None:
                status["rebalance"] = {
                    "tick": self.planner.tick,
                    "hot_shard": self.planner.hot_shard,
                    "hot_streak": self.planner.hot_streak,
                    "inflight": sorted(self.planner.inflight),
                }
        return status

    def _op_session_redirect(
        self, op: str, message: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Session ops don't run here — answer with where they should go."""
        session = message.get("session")
        if not isinstance(session, str) or not session:
            return error_response(
                f"op {op!r} is served by shards, not the coordinator; "
                "ask 'locate' with a session name"
            )
        try:
            shard, host, port = self.locate(session)
        except LookupError as exc:
            return error_response(str(exc))
        response = error_response(
            f"session {session!r} is served by shard {shard}"
        )
        response["redirect"] = {"shard": shard, "host": host, "port": port}
        return response
