"""Shard-side fleet agent: registration, heartbeats, lease revocation.

A shard is an ordinary :class:`~repro.harmony.server.TuningServer` process;
what makes it part of a fleet is this agent, which (1) registers the
shard's serving address with the coordinator, (2) renews the lease from a
daemon thread at a third of the lease interval, and (3) watches the
heartbeat responses for ``alive: false`` — the coordinator's signal that
the lease was revoked and the shard's sessions have been re-homed, at
which point the shard must stop serving (``repro serve`` drains its loop
via the *on_revoked* callback).

With a *load_fn* attached (``repro serve --coordinator`` wires it to
:meth:`repro.harmony.server.TuningServer.load_report`), every heartbeat
also carries a load report: pending admission depth, session count, and
per-session smoothed request rates.  The agent samples the server's
cumulative per-session report counters at each beat, diffs them against
the previous sample, and folds the instantaneous rates into an EWMA — so
the coordinator's rebalance planner sees sustained load, not one bursty
interval.  Sessions that vanish between beats (migrated away) drop out of
the EWMA immediately.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.harmony.transport import TcpClientTransport

__all__ = ["ShardAgent"]


class ShardAgent:
    """Keeps one shard registered and leased with the fleet coordinator."""

    def __init__(
        self,
        coordinator_addr: tuple[str, int],
        *,
        host: str,
        port: int,
        wal_dir: Any | None = None,
        shard_id: int | None = None,
        register_timeout: float = 10.0,
        request_timeout: float = 5.0,
        metrics: Any | None = None,
        tracer: Any | None = None,
        on_revoked: Callable[[], None] | None = None,
        load_fn: Callable[[], dict] | None = None,
        load_alpha: float = 0.5,
    ) -> None:
        self._addr = (str(coordinator_addr[0]), int(coordinator_addr[1]))
        self._host = host
        self._port = int(port)
        self._wal_dir = str(wal_dir) if wal_dir is not None else None
        self.shard_id = shard_id
        self.lease_s: float | None = None
        self._register_timeout = float(register_timeout)
        self._request_timeout = float(request_timeout)
        self.metrics = metrics
        self.tracer = tracer
        self._on_revoked = on_revoked
        self._load_fn = load_fn
        self._load_alpha = float(load_alpha)
        #: last cumulative per-session report counters and sample time
        self._last_counts: dict[str, int] = {}
        self._last_sample: float | None = None
        #: session name -> EWMA requests/second
        self._rates: dict[str, float] = {}
        #: set when the coordinator revoked our lease — stop serving.
        self.revoked = threading.Event()
        self._stop = threading.Event()
        self._beat: threading.Thread | None = None

    def _request(self, message: dict) -> dict:
        transport = TcpClientTransport(
            self._addr[0], self._addr[1], timeout=self._request_timeout
        )
        try:
            return transport.request(message)
        finally:
            transport.close()

    def start(self) -> int:
        """Register with the coordinator (retrying up to *register_timeout*)
        and start the heartbeat thread; returns the assigned shard id."""
        deadline = time.monotonic() + self._register_timeout
        message = {
            "op": "register_shard", "host": self._host, "port": self._port,
            "wal_dir": self._wal_dir,
        }
        if self.shard_id is not None:
            message["shard"] = int(self.shard_id)
        last_error: Exception | None = None
        while True:
            try:
                response = self._request(message)
                if response.get("ok"):
                    break
                last_error = RuntimeError(response.get("error", "register_shard failed"))
            except (OSError, ConnectionError) as exc:
                last_error = exc
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"could not register with coordinator at "
                    f"{self._addr[0]}:{self._addr[1]}: {last_error}"
                )
            time.sleep(0.1)
        self.shard_id = int(response["shard"])
        self.lease_s = float(response["lease_s"])
        if self.metrics is not None:
            self.metrics.inc("fleet.shard_registered")
        self._stop.clear()
        self.revoked.clear()
        self._beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        self._beat.start()
        return self.shard_id

    def sample_load(self, now: float | None = None) -> dict | None:
        """Diff the server's cumulative counters into the heartbeat load dict.

        Returns ``None`` without a *load_fn* (or when it fails — a load
        report is best-effort, a heartbeat must still go out).  Public so
        tests (and operators) can drive the EWMA with an explicit clock.
        """
        if self._load_fn is None:
            return None
        try:
            report = self._load_fn()
        except Exception:  # pragma: no cover - never fail the heartbeat
            return None
        now = time.monotonic() if now is None else float(now)
        counts = {
            str(name): int(n) for name, n in (report.get("reports") or {}).items()
        }
        if self._last_sample is not None:
            elapsed = max(1e-6, now - self._last_sample)
            alpha = self._load_alpha
            for name, count in counts.items():
                inst = max(0, count - self._last_counts.get(name, 0)) / elapsed
                prev = self._rates.get(name)
                self._rates[name] = (
                    inst if prev is None else alpha * inst + (1.0 - alpha) * prev
                )
            # sessions gone from the report (closed or migrated away)
            for name in list(self._rates):
                if name not in counts:
                    del self._rates[name]
        self._last_counts = counts
        self._last_sample = now
        session_rps = {n: round(r, 3) for n, r in sorted(self._rates.items())}
        load = {
            "sessions": int(report.get("sessions", len(counts))),
            "rps": round(sum(self._rates.values()), 3),
            "session_rps": session_rps,
        }
        if "pending" in report:
            load["pending"] = int(report["pending"])
        return load

    def _heartbeat_loop(self) -> None:
        interval = max(0.05, (self.lease_s or 1.0) / 3.0)
        while not self._stop.wait(interval):
            message: dict = {"op": "heartbeat", "shard": self.shard_id}
            load = self.sample_load()
            if load is not None:
                message["load"] = load
            try:
                response = self._request(message)
            except (OSError, ConnectionError):
                # Coordinator unreachable: keep trying — the lease may
                # still be renewed before it runs out.
                if self.metrics is not None:
                    self.metrics.inc("fleet.heartbeat_failures")
                continue
            if self.metrics is not None:
                self.metrics.inc("fleet.heartbeats")
            if response.get("ok") and not response.get("alive", True):
                # Lease revoked: our sessions were re-homed elsewhere.
                self.revoked.set()
                if self._on_revoked is not None:
                    try:
                        self._on_revoked()
                    except Exception:  # pragma: no cover
                        pass
                return

    def stop(self) -> None:
        self._stop.set()
        if self._beat is not None:
            self._beat.join(timeout=2.0)
            self._beat = None
