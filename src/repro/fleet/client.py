"""Client-side fleet routing: resolve a session through the coordinator.

:class:`FleetResolver` is a *transport factory* — exactly the shape
:class:`~repro.harmony.client.TuningClient` already takes for reconnects
— that asks the coordinator ``locate`` for the session's owning shard and
dials it.  Because the client calls the factory afresh on every reconnect,
re-resolution after a shard death comes for free: the dial fails, the
client's retry loop calls the factory again, and the resolver passes the
dead shard as an ``unreachable`` hint so the coordinator probes (and
re-homes) it immediately instead of waiting out the lease.

The resolver caches its last successful resolution, so steady-state
reconnects dial the owning shard directly and *skip the coordinator
round-trip entirely* (``cache_hits`` vs ``locates`` counters witness
this).  The cache is invalidated when the shard stops answering — a
failed dial, or a ``moved`` tombstone surfaced by the client as
:class:`~repro.harmony.client.SessionMoved`, which calls
:meth:`FleetResolver.invalidate` before reconnecting — and the next call
falls back to a fresh ``locate``, chasing the session to its new owner.
"""

from __future__ import annotations

from typing import Any

from repro.harmony.client import TuningClient
from repro.harmony.transport import PipelinedTcpClientTransport, TcpClientTransport

__all__ = ["FleetResolver", "fleet_client"]


class FleetResolver:
    """Callable transport factory that routes *session* via the coordinator."""

    def __init__(
        self,
        host: str,
        port: int,
        session: str,
        *,
        timeout: float = 10.0,
        locate_timeout: float = 5.0,
        dial_attempts: int = 3,
        pipelined: bool = False,
    ) -> None:
        if not session:
            raise ValueError("FleetResolver needs a non-empty session name")
        self._coordinator = (str(host), int(port))
        self.session = session
        self._timeout = float(timeout)
        self._locate_timeout = float(locate_timeout)
        self._dial_attempts = max(1, int(dial_attempts))
        self._pipelined = bool(pipelined)
        #: (shard, host, port) of the last successful resolution
        self.last_shard: tuple[int, str, int] | None = None
        self._unreachable: int | None = None
        #: cached route: dial here first, skipping the coordinator
        self._cached: tuple[int, str, int] | None = None
        #: coordinator ``locate`` round-trips performed
        self.locates = 0
        #: dials served straight from the cached route
        self.cache_hits = 0

    def invalidate(self) -> None:
        """Drop the cached route; the next dial re-resolves via ``locate``.

        The client calls this (duck-typed through its transport factory)
        when a shard answers with a ``moved`` tombstone.
        """
        self._cached = None

    def resolve(self) -> tuple[int, str, int]:
        """Ask the coordinator where the session lives now."""
        self.locates += 1
        message: dict[str, Any] = {"op": "locate", "session": self.session}
        if self._unreachable is not None:
            message["unreachable"] = self._unreachable
        transport = TcpClientTransport(
            self._coordinator[0], self._coordinator[1],
            timeout=self._locate_timeout,
        )
        try:
            response = transport.request(message)
        finally:
            transport.close()
        if not response.get("ok") or "redirect" not in response:
            raise ConnectionError(
                f"coordinator could not locate session {self.session!r}: "
                f"{response.get('error', 'no redirect in response')}"
            )
        redirect = response["redirect"]
        return int(redirect["shard"]), str(redirect["host"]), int(redirect["port"])

    def __call__(self):
        cls = PipelinedTcpClientTransport if self._pipelined else TcpClientTransport
        if self._cached is not None:
            shard, host, port = self._cached
            try:
                transport = cls(host, port, timeout=self._timeout)
            except OSError:
                # The cached shard stopped answering: forget the route and
                # re-resolve below, telling the coordinator who failed.
                self.invalidate()
                self._unreachable = shard
            else:
                self.cache_hits += 1
                self.last_shard = (shard, host, port)
                return transport
        for attempt in range(self._dial_attempts):
            shard, host, port = self.resolve()
            try:
                transport = cls(host, port, timeout=self._timeout)
            except OSError:
                # The shard the coordinator pointed us at does not answer.
                # Re-resolve with the failure as a hint: the coordinator
                # probes the shard, expires it if it really is dead, and
                # re-homes its sessions — so the *next* resolve points at
                # a live survivor, usually on the very next attempt.
                self._unreachable = shard
                if attempt == self._dial_attempts - 1:
                    raise ConnectionError(
                        f"shard {shard} at {host}:{port} is unreachable"
                    )
                continue
            self._unreachable = None
            self.last_shard = (shard, host, port)
            self._cached = (shard, host, port)
            return transport


def fleet_client(
    host: str,
    port: int,
    session: str,
    *,
    pipelined: bool = False,
    timeout: float = 10.0,
    **client_kwargs: Any,
) -> TuningClient:
    """A :class:`TuningClient` bound to *session*, routed by the coordinator
    at ``host:port``.  Extra kwargs go to the ``TuningClient`` constructor
    (``nonce``, ``reconnect_attempts``, ...)."""
    resolver = FleetResolver(
        host, port, session, timeout=timeout, pipelined=pipelined
    )
    return TuningClient(
        transport_factory=resolver, session=session, **client_kwargs
    )
