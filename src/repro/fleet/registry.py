"""The fleet registry: a deterministic shard/session-ownership state machine.

The coordinator's source of truth is this tiny state machine: which shard
processes exist (address, WAL directory, lease expiry, liveness) and which
shard owns each named tuning session.  Every mutation is a *command* — a
plain JSON-compatible dict applied through :meth:`FleetRegistry.apply` —
and every input the command needs (including timestamps: lease expiries
are carried *in* the command, never read from a clock inside ``apply``) is
part of the record.  That makes the machine a pure function of its command
stream, which is what lets the coordinator reuse the serving stack's WAL
machinery unchanged: log the command, apply it, and a replay of the log
reconstructs the identical shard-ownership map (property-tested in
``tests/fleet/test_registry_properties.py``).

Command vocabulary (the ``"c"`` field)::

    register   {"c","shard","host","port","wal_dir","until"} — add a shard
               (or revive/re-address a known one) with a lease until *until*
    heartbeat  {"c","shard","until"[,"load"]} — extend a live shard's lease;
               ignored for unknown or expired shards (they must re-register).
               An optional ``load`` dict (the shard agent's load report —
               pending depth, session count, rps, per-session rates) is
               stored on the shard and feeds the rebalance planner
    expire     {"c","shard"} — mark a shard dead; its session mappings stay
               until a ``rehome`` moves them (so recovery knows where the
               state lives)
    assign     {"c","session","shard"} — bind an unowned session to a live
               shard; ignored when the shard is unknown or dead
    rehome     {"c","session","shard"} — move a session to a live shard
               (the migration step after an expiry)
    close      {"c","session"} — drop a session's ownership mapping

Unknown shards and dead targets are *ignored deterministically* (``apply``
returns ``{"applied": False}``) rather than raising: a WAL written under
one interleaving must replay byte-for-byte under the same interleaving,
and commands racing a concurrent expiry are a normal part of operation.

Registry WAL records wrap the command as ``{"t": "fleet", "c": {...}}``;
snapshot records are the standard ``snap`` records every WAL segment
rotation writes (:meth:`repro.harmony.wal.WalWriter.snapshot` over
:meth:`FleetRegistry.state_dict`).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.harmony.wal import WalWriter, replay_dir, truncate_torn_tail

__all__ = ["FleetRegistry", "recover_registry"]


class FleetRegistry:
    """Shard liveness/leases and session-to-shard ownership.

    Not thread-safe by itself — the coordinator serializes ``apply`` calls
    under its own lock (which is also what gives the WAL a well-defined
    order).
    """

    def __init__(self) -> None:
        #: shard id -> {"host", "port", "wal_dir", "until", "alive", "load"}
        self.shards: dict[int, dict[str, Any]] = {}
        #: session name -> owning shard id
        self.sessions: dict[str, int] = {}

    # -- queries ------------------------------------------------------------------

    def next_shard_id(self) -> int:
        """The id ``register`` should use for a brand-new shard.

        Derived from state (max known id + 1) instead of a counter so a
        registry rebuilt from its WAL allocates identically.
        """
        return max(self.shards) + 1 if self.shards else 0

    def is_alive(self, shard: int) -> bool:
        info = self.shards.get(shard)
        return bool(info is not None and info["alive"])

    def alive_shards(self) -> list[int]:
        """Live shard ids, ascending."""
        return sorted(s for s, info in self.shards.items() if info["alive"])

    def owner(self, session: str) -> int | None:
        """The shard owning *session* (None = unassigned)."""
        return self.sessions.get(session)

    def sessions_on(self, shard: int) -> list[str]:
        """Session names owned by *shard*, sorted."""
        return sorted(n for n, s in self.sessions.items() if s == shard)

    def least_loaded(self) -> int | None:
        """The live shard owning the fewest sessions (ties: lowest id)."""
        alive = self.alive_shards()
        if not alive:
            return None
        loads = {s: 0 for s in alive}
        for owner in self.sessions.values():
            if owner in loads:
                loads[owner] += 1
        return min(alive, key=lambda s: (loads[s], s))

    def shard_load(self, shard: int) -> dict[str, Any] | None:
        """The last heartbeat load report for *shard* (None = never sent)."""
        info = self.shards.get(shard)
        return info.get("load") if info is not None else None

    def expired(self, now: float) -> list[int]:
        """Live shards whose lease ended before *now*, ascending."""
        return sorted(
            s for s, info in self.shards.items()
            if info["alive"] and info["until"] < now
        )

    # -- the command interpreter --------------------------------------------------

    def apply(self, cmd: Mapping[str, Any]) -> dict[str, Any]:
        """Apply one command; returns ``{"applied": bool, ...}``.

        Deterministic: the result (and the state transition) depends only
        on the current state and the command's own fields.  Malformed or
        unknown commands raise ``ValueError`` — they indicate a corrupt
        record, not a race.
        """
        kind = cmd.get("c")
        if kind == "register":
            shard = int(cmd["shard"])
            self.shards[shard] = {
                "host": str(cmd["host"]),
                "port": int(cmd["port"]),
                "wal_dir": cmd.get("wal_dir"),
                "until": float(cmd["until"]),
                "alive": True,
                "load": None,
            }
            return {"applied": True, "shard": shard}
        if kind == "heartbeat":
            shard = int(cmd["shard"])
            info = self.shards.get(shard)
            if info is None or not info["alive"]:
                return {"applied": False}
            info["until"] = max(info["until"], float(cmd["until"]))
            load = cmd.get("load")
            if isinstance(load, Mapping):
                info["load"] = dict(load)
            return {"applied": True}
        if kind == "expire":
            shard = int(cmd["shard"])
            info = self.shards.get(shard)
            if info is None:
                return {"applied": False}
            info["alive"] = False
            return {"applied": True}
        if kind in ("assign", "rehome"):
            shard = int(cmd["shard"])
            session = str(cmd["session"])
            if not self.is_alive(shard):
                return {"applied": False}
            self.sessions[session] = shard
            return {"applied": True}
        if kind == "close":
            session = str(cmd["session"])
            return {"applied": self.sessions.pop(session, None) is not None}
        raise ValueError(f"unknown fleet command {kind!r}")

    # -- snapshots ----------------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """JSON-compatible full state (what a WAL ``snap`` record carries)."""
        return {
            "shards": {
                str(shard): dict(info) for shard, info in sorted(self.shards.items())
            },
            "sessions": dict(sorted(self.sessions.items())),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Rebuild from a :meth:`state_dict` snapshot."""
        self.shards = {
            int(shard): {
                "host": str(info["host"]),
                "port": int(info["port"]),
                "wal_dir": info.get("wal_dir"),
                "until": float(info["until"]),
                "alive": bool(info["alive"]),
                "load": dict(info["load"]) if info.get("load") else None,
            }
            for shard, info in state.get("shards", {}).items()
        }
        self.sessions = {
            str(name): int(shard)
            for name, shard in state.get("sessions", {}).items()
        }


def recover_registry(
    wal_dir: Any,
    *,
    sync: str = "batch",
    segment_bytes: int = 16 << 20,
    snapshot_bytes: int = 4 << 20,
    planner: Any | None = None,
) -> tuple[FleetRegistry, WalWriter, dict]:
    """Rebuild a registry from its WAL directory; returns ``(registry, wal, stats)``.

    Mirrors :func:`repro.harmony.wal.recover_server`: restore the latest
    complete snapshot, re-apply every ``fleet`` record after it, truncate
    any torn tail, and attach a fresh :class:`WalWriter` continuing in the
    same directory.  An empty (or absent) directory yields a blank registry,
    so first boot and restart share one code path.

    When *planner* is given (a :class:`repro.fleet.rebalance.RebalancePlanner`)
    its state rides in the same WAL: snapshots become the combined
    ``{"registry": ..., "planner": ...}`` form (detected by the
    ``"registry"`` key; legacy plain registry snapshots still restore) and
    ``{"t": "plan"}`` records replay through ``planner.apply``.
    """
    snapshot, ops, stats = replay_dir(wal_dir)
    registry = FleetRegistry()
    if snapshot is not None:
        if "registry" in snapshot:
            registry.restore_state(snapshot["registry"])
            if planner is not None and snapshot.get("planner") is not None:
                planner.restore_state(snapshot["planner"])
        else:
            registry.restore_state(snapshot)
    replayed = 0
    for record in ops:
        kind = record.get("t")
        if kind == "fleet":
            registry.apply(record["c"])
            replayed += 1
        elif kind == "plan" and planner is not None:
            planner.apply(record["c"])
            replayed += 1
    truncate_torn_tail(stats)
    wal = WalWriter(
        wal_dir, sync=sync, segment_bytes=segment_bytes,
        snapshot_bytes=snapshot_bytes,
    )
    stats = dict(stats, replayed=replayed)
    return registry, wal, stats
