"""Event-driven SPMD cluster simulator (paper §4.1 made generative).

The paper *models* a cluster node as a single machine under a strict-priority
scheduler: all variability sources are first-priority jobs, the tunable
application is second priority.  This package implements that model as an
event-driven simulator so the two-job algebra (Eqs. 6–7) and the heavy-tail
trace morphology (Figs. 3–7) can be *generated* rather than assumed:

* :mod:`repro.cluster.workload` — first-priority job sources (Poisson bursts
  with heavy-tailed service, periodic house-keeping daemons);
* :mod:`repro.cluster.machine` — one node: preemptive-resume strict-priority
  single server;
* :mod:`repro.cluster.cluster` — P nodes with barrier-synchronized iterations
  (``T_k = max_p t_{p,k}``) and optional cluster-wide correlated events;
* :mod:`repro.cluster.trace` — per-processor iteration-time records.
"""

from repro.cluster.workload import (
    ExponentialService,
    FixedService,
    ParetoService,
    PeriodicDaemon,
    PoissonArrivals,
    WorkloadSource,
)
from repro.cluster.machine import PriorityMachine
from repro.cluster.cluster import Cluster
from repro.cluster.trace import ClusterTrace

__all__ = [
    "WorkloadSource",
    "PoissonArrivals",
    "PeriodicDaemon",
    "ExponentialService",
    "ParetoService",
    "FixedService",
    "PriorityMachine",
    "Cluster",
    "ClusterTrace",
]
