"""First-priority workload sources for the cluster simulator.

A *workload source* produces an ordered, unbounded stream of
``(arrival_time, service_demand)`` events — the "other activity" (daemons,
house-keeping, transient disruptions) that preempts the tunable application
on a node.  Each source reports its long-run ``load`` (capacity fraction),
so a machine can compute its idle throughput ρ as the sum of source loads.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from repro._util import as_generator, check_nonnegative, check_positive

#: events generated per vectorized block — large enough to amortize NumPy
#: call overhead, small enough that short simulations don't over-draw
EVENT_BLOCK = 256

__all__ = [
    "ServiceDistribution",
    "FixedService",
    "ExponentialService",
    "ParetoService",
    "WorkloadSource",
    "PoissonArrivals",
    "PeriodicDaemon",
]


class ServiceDistribution(ABC):
    """Distribution of one first-priority job's service demand (seconds)."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Mean service demand (must be finite so loads are well defined)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one service demand."""

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* service demands as an array.

        Subclasses override with a single vectorized RNG call; the default
        loops over :meth:`sample` so custom distributions keep working.
        """
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)


class FixedService(ServiceDistribution):
    """Deterministic service demand — e.g. a fixed-cost house-keeping task."""

    def __init__(self, duration: float) -> None:
        self.duration = check_positive("duration", duration)

    @property
    def mean(self) -> float:
        return self.duration

    def sample(self, rng: np.random.Generator) -> float:
        return self.duration

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.duration)


class ExponentialService(ServiceDistribution):
    """Exponential service demand — light-tailed control."""

    def __init__(self, mean: float) -> None:
        self._mean = check_positive("mean", mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)


class ParetoService(ServiceDistribution):
    """Pareto(α, β) service demand — the heavy-tailed disruption model.

    Requires α > 1 so the offered load is finite; with 1 < α < 2 the demand
    has infinite variance, which is what puts the heavy tail into observed
    iteration times (Figs. 3–7).
    """

    def __init__(self, alpha: float, beta: float) -> None:
        self.alpha = check_positive("alpha", alpha)
        self.beta = check_positive("beta", beta)
        if alpha <= 1.0:
            raise ValueError(
                f"ParetoService needs alpha > 1 for a finite mean load, got {alpha}"
            )

    @property
    def mean(self) -> float:
        return self.alpha * self.beta / (self.alpha - 1.0)

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        return float(self.beta * (1.0 - u) ** (-1.0 / self.alpha))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        return self.beta * (1.0 - u) ** (-1.0 / self.alpha)


class WorkloadSource(ABC):
    """An unbounded stream of first-priority job events."""

    @property
    @abstractmethod
    def load(self) -> float:
        """Long-run capacity fraction this source consumes."""

    @abstractmethod
    def stream(
        self, start: float, rng: int | np.random.Generator | None = None
    ) -> Iterator[tuple[float, float]]:
        """Yield ``(arrival_time, service_demand)`` with arrival_time >= start,
        in non-decreasing arrival order, forever."""

    def stream_blocks(
        self,
        start: float,
        rng: int | np.random.Generator | None = None,
        *,
        block: int = EVENT_BLOCK,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(arrival_times, service_demands)`` array blocks.

        The vectorized face of :meth:`stream`: the simulator consumes
        events through this interface so sources that override it (the
        built-ins do) pay one NumPy call per *block* instead of two Python
        RNG calls per *event*.  The default wraps :meth:`stream`, so custom
        per-event sources keep working unchanged.
        """
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        events = self.stream(start, rng)
        while True:
            pairs = list(itertools.islice(events, block))
            if not pairs:
                return
            arr = np.asarray(pairs, dtype=float)
            yield arr[:, 0], arr[:, 1]


class PoissonArrivals(WorkloadSource):
    """Poisson job arrivals at *rate* per second with i.i.d. service demands."""

    def __init__(self, rate: float, service: ServiceDistribution) -> None:
        self.rate = check_positive("rate", rate)
        self.service = service
        if self.load >= 1.0:
            raise ValueError(
                f"offered load {self.load:.3f} >= 1 would saturate the node"
            )

    @property
    def load(self) -> float:
        return self.rate * self.service.mean

    def stream(
        self, start: float, rng: int | np.random.Generator | None = None
    ) -> Iterator[tuple[float, float]]:
        for times, services in self.stream_blocks(start, rng):
            yield from zip(times.tolist(), services.tolist())

    def stream_blocks(
        self,
        start: float,
        rng: int | np.random.Generator | None = None,
        *,
        block: int = EVENT_BLOCK,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        gen = as_generator(rng)
        t = float(start)
        scale = 1.0 / self.rate
        while True:
            times = t + np.cumsum(gen.exponential(scale, size=block))
            t = float(times[-1])
            yield times, self.service.sample_batch(gen, block)


class PeriodicDaemon(WorkloadSource):
    """A house-keeping daemon that wakes every *period* seconds.

    Matches the classic OS-noise pattern from Petrini et al. (paper ref.
    [15]): a fixed-cadence activity whose per-wake cost may be jittered.
    """

    def __init__(
        self,
        period: float,
        service: ServiceDistribution,
        *,
        phase: float = 0.0,
    ) -> None:
        self.period = check_positive("period", period)
        self.phase = check_nonnegative("phase", phase)
        self.service = service
        if self.load >= 1.0:
            raise ValueError(
                f"daemon load {self.load:.3f} >= 1 would saturate the node"
            )

    @property
    def load(self) -> float:
        return self.service.mean / self.period

    def stream(
        self, start: float, rng: int | np.random.Generator | None = None
    ) -> Iterator[tuple[float, float]]:
        for times, services in self.stream_blocks(start, rng):
            yield from zip(times.tolist(), services.tolist())

    def stream_blocks(
        self,
        start: float,
        rng: int | np.random.Generator | None = None,
        *,
        block: int = EVENT_BLOCK,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        gen = as_generator(rng)
        # First wake-up at or after `start` on the phase-shifted lattice.
        k = max(0, math.ceil((start - self.phase) / self.period))
        while True:
            times = self.phase + np.arange(k, k + block, dtype=float) * self.period
            k += block
            # Only the first block can straddle `start` (ceil boundary).
            times = times[times >= start]
            if times.size:
                yield times, self.service.sample_batch(gen, times.size)
