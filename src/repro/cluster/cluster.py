"""A P-node barrier-synchronized SPMD cluster.

Each node is a :class:`~repro.cluster.machine.PriorityMachine`.  The cluster
runs the application's iterative loop: every iteration, each node serves its
local application work; all nodes then wait at a barrier for the slowest
(``T_k = max_p t_{p,k}``, Eq. 1) before the next iteration starts.  During
the barrier wait a node's first-priority backlog keeps draining, exactly as
on a real machine.

Two kinds of disruption sources are supported:

* **private sources** — independent per node (each node gets its own child
  RNG stream, so nodes are statistically independent);
* **shared sources** — one event sequence replayed identically on every node
  (global file-system scans, cluster-wide daemons), which produces the
  cross-processor correlation the paper observes in Fig. 3.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro._util import as_generator, spawn_generators
from repro.cluster.machine import PriorityMachine
from repro.cluster.trace import ClusterTrace
from repro.cluster.workload import WorkloadSource

__all__ = ["Cluster"]

#: per-iteration cost specification: a scalar, a per-node array, or a
#: callable ``cost(p, k) -> float``.
CostSpec = float | Sequence[float] | Callable[[int, int], float]


class Cluster:
    """A barrier-synchronized collection of strict-priority nodes."""

    def __init__(
        self,
        n_nodes: int,
        *,
        private_sources: Sequence[WorkloadSource] = (),
        shared_sources: Sequence[WorkloadSource] = (),
        speed_factors: Sequence[float] | None = None,
        seed: int | np.random.Generator | None = None,
        kernel: str = "auto",
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        if speed_factors is None:
            self.speed_factors = np.ones(n_nodes)
        else:
            self.speed_factors = np.asarray(speed_factors, dtype=float)
            if self.speed_factors.shape != (n_nodes,):
                raise ValueError(
                    f"speed_factors must have shape ({n_nodes},), "
                    f"got {self.speed_factors.shape}"
                )
            if np.any(self.speed_factors <= 0):
                raise ValueError("speed factors must be positive")
        self._private_sources = tuple(private_sources)
        self._shared_sources = tuple(shared_sources)
        master = as_generator(seed)
        # One child stream per node, plus one entropy draw for the shared
        # sequences.  Each shared source gets its own SeedSequence child
        # (sequential integer seeds risk correlated streams); re-seeding
        # from the same child per node keeps the "identical on every node"
        # replay property.
        children = spawn_generators(master, n_nodes)
        shared_entropy = int(master.integers(0, 2**63 - 1))
        self._shared_seedseqs = np.random.SeedSequence(shared_entropy).spawn(
            len(self._shared_sources)
        )
        shared_load = float(sum(s.load for s in self._shared_sources))
        self.nodes: list[PriorityMachine] = []
        for p in range(n_nodes):
            # Every node replays the *same* shared event sequence: identical
            # seed, identical stream -> perfectly correlated disruptions.
            shared_streams = [
                src.stream_blocks(0.0, np.random.default_rng(self._shared_seedseqs[i]))
                for i, src in enumerate(self._shared_sources)
            ]
            self.nodes.append(
                PriorityMachine(
                    self._private_sources,
                    children[p],
                    shared_streams=shared_streams,
                    shared_load=shared_load,
                    kernel=kernel,
                )
            )

    @property
    def rho(self) -> float:
        """Idle throughput of one node (all nodes are identically loaded)."""
        return self.nodes[0].rho

    @staticmethod
    def _cost_fn(costs: CostSpec, n_nodes: int) -> Callable[[int, int], float]:
        if callable(costs):
            return costs
        if np.isscalar(costs):
            c = float(costs)  # type: ignore[arg-type]
            return lambda p, k: c
        arr = np.asarray(costs, dtype=float)
        if arr.shape != (n_nodes,):
            raise ValueError(
                f"per-node cost array must have shape ({n_nodes},), got {arr.shape}"
            )
        return lambda p, k: float(arr[p])

    def run(self, costs: CostSpec, n_iterations: int) -> ClusterTrace:
        """Run *n_iterations* barrier-synchronized iterations.

        Parameters
        ----------
        costs:
            Noise-free per-iteration application work: a scalar (SPMD, all
            nodes equal), a per-node array, or ``cost(p, k)``.
        """
        if n_iterations < 1:
            raise ValueError(f"need at least one iteration, got {n_iterations}")
        # Static cost specs (scalar / per-node array) are iteration-invariant:
        # precompute the per-node work vector once instead of paying a
        # cost(p, k) call per node per iteration.
        static_works: np.ndarray | None = None
        if not callable(costs):
            arr = np.asarray(costs, dtype=float)
            if arr.ndim == 0:
                arr = np.full(self.n_nodes, float(arr))
            elif arr.shape != (self.n_nodes,):
                raise ValueError(
                    f"per-node cost array must have shape ({self.n_nodes},), "
                    f"got {arr.shape}"
                )
            # Slower nodes (speed < 1) take proportionally longer for the
            # same application work — heterogeneity makes Eq. 1's max
            # barrier bite even without noise.
            static_works = arr / self.speed_factors
        cost = self._cost_fn(costs, self.n_nodes) if static_works is None else None
        times = np.empty((self.n_nodes, n_iterations), dtype=float)
        barriers = np.empty(n_iterations, dtype=float)
        finishes = np.empty(self.n_nodes, dtype=float)
        barrier = 0.0
        for k in range(n_iterations):
            if static_works is None:
                works = (
                    np.fromiter(
                        (cost(p, k) for p in range(self.n_nodes)),
                        dtype=float,
                        count=self.n_nodes,
                    )
                    / self.speed_factors
                )
            else:
                works = static_works
            for p, node in enumerate(self.nodes):
                finishes[p] = node.serve_application(works[p])
            times[:, k] = finishes - barrier
            barrier = float(finishes.max())
            barriers[k] = barrier
            for node in self.nodes:
                node.advance_to(barrier)
        return ClusterTrace(
            times=times,
            barrier_times=barriers,
            rho=self.rho,
            meta={
                "n_nodes": self.n_nodes,
                "private_sources": [repr(s) for s in self._private_sources],
                "shared_sources": [repr(s) for s in self._shared_sources],
            },
        )
