"""A single cluster node: preemptive-resume strict-priority single server.

The node serves two job classes (paper §4.1):

* **first priority** — variability sources (daemons, bursts); whenever any
  first-priority work is outstanding, the server works on it;
* **second priority** — the tunable application; it only accumulates service
  when the first-priority backlog is empty.

The observed application time for an iteration needing ``work`` seconds of
service is therefore ``work`` plus all the first-priority service performed
while the iteration was in the system — exactly ``y = f(v) + n(v)`` (Eq. 5).
During barrier waits (the node finished its iteration but others have not)
the server keeps draining first-priority backlog.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._util import as_generator, check_nonnegative
from repro.cluster.workload import EVENT_BLOCK, WorkloadSource

__all__ = ["PriorityMachine"]


class _EventBuffer:
    """Array-buffered cursor over one source's event blocks.

    The simulator's merge heap only ever needs each stream's *head* event;
    buffering whole ``(times, services)`` blocks behind that head is what
    lets sources generate events with one vectorized RNG call per block
    while the merge logic stays per-event and exact.
    """

    __slots__ = ("_blocks", "_times", "_services", "_pos")

    def __init__(self, blocks: Iterator[tuple[np.ndarray, np.ndarray]]) -> None:
        self._blocks = blocks
        self._times: np.ndarray | None = None
        self._services: np.ndarray | None = None
        self._pos = 0

    @classmethod
    def from_stream(
        cls, stream: Iterable[tuple[float, float]] | Iterator[tuple[np.ndarray, np.ndarray]]
    ) -> "_EventBuffer":
        """Accept either a per-event ``(t, service)`` iterator (the public
        ``shared_streams`` contract) or an array-block iterator."""
        it = iter(stream)
        try:
            first = next(it)
        except StopIteration:
            return cls(iter(()))
        chained = itertools.chain([first], it)
        if isinstance(first[0], np.ndarray):
            return cls(chained)

        def blockify() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            while True:
                pairs = list(itertools.islice(chained, EVENT_BLOCK))
                if not pairs:
                    return
                arr = np.asarray(pairs, dtype=float)
                yield arr[:, 0], arr[:, 1]

        return cls(blockify())

    def next_event(self) -> tuple[float, float] | None:
        """Pop the stream's next ``(arrival, service)``, or None when dry."""
        while self._times is None or self._pos >= self._times.size:
            try:
                self._times, self._services = next(self._blocks)
            except StopIteration:
                return None
            self._pos = 0
        i = self._pos
        self._pos = i + 1
        return float(self._times[i]), float(self._services[i])

    def next_block(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Pop the rest of the current block (or the next one) as arrays.

        The batched kernel's block-granular sibling of :meth:`next_event`;
        returns None when the stream is dry.
        """
        while self._times is None or self._pos >= self._times.size:
            try:
                self._times, self._services = next(self._blocks)
            except StopIteration:
                return None
            self._pos = 0
        i = self._pos
        self._pos = self._times.size
        return self._times[i:], self._services[i:]


class PriorityMachine:
    """Event-driven strict-priority node simulator.

    Parameters
    ----------
    sources:
        First-priority workload sources private to this node.
    rng:
        Seed or generator for the private sources' event streams.
    shared_streams:
        Optional pre-seeded event streams shared (identically) across all
        nodes of a cluster — models cluster-wide correlated disruptions such
        as global file-system scans (the cross-processor correlation visible
        in the paper's Fig. 3).  Each entry is either a per-event
        ``(arrival, service)`` iterator or a vectorized
        ``(times, services)`` block iterator (a ``stream_blocks`` result).
    kernel:
        ``"scalar"`` runs the original per-event merge heap; ``"batched"``
        runs the event-horizon kernel, which merges whole stream blocks up
        to a horizon with one stable ``np.argsort`` and then replays the
        exact scalar arithmetic over flat local lists — bit-identical
        results (heap tie-breaks and RNG block-draw order included) at a
        fraction of the per-event cost.  ``"auto"`` (default) picks
        batched whenever the node has any event stream; a stream-less node
        falls back to the scalar loop, which is already pure arithmetic.
    """

    def __init__(
        self,
        sources: Sequence[WorkloadSource] = (),
        rng: int | np.random.Generator | None = None,
        *,
        shared_streams: Sequence[Iterable] = (),
        shared_load: float = 0.0,
        kernel: str = "auto",
    ) -> None:
        if kernel not in ("auto", "batched", "scalar"):
            raise ValueError(
                f"kernel must be 'auto', 'batched', or 'scalar', got {kernel!r}"
            )
        gen = as_generator(rng)
        self._sources = tuple(sources)
        self._own_load = float(sum(s.load for s in self._sources))
        self._shared_load = check_nonnegative("shared_load", shared_load)
        if self.rho >= 1.0:
            raise ValueError(f"total offered load {self.rho:.3f} >= 1 saturates the node")
        self.clock = 0.0
        self.backlog = 0.0
        #: total first-priority service performed so far (for load audits)
        self.p1_service_done = 0.0
        self._heap: list[tuple[float, int, float, int]] = []
        self._counter = 0
        # Generators are lazy: nothing is drawn from `gen` until the first
        # block is pulled, so both kernels consume the shared generator in
        # the same order (stream index order at first, block-exhaustion
        # order afterwards).
        self._streams: list[_EventBuffer] = [
            _EventBuffer(source.stream_blocks(0.0, gen)) for source in self._sources
        ]
        self._streams.extend(
            _EventBuffer.from_stream(stream) for stream in shared_streams
        )
        self.kernel = kernel
        self._batched = kernel == "batched" or (
            kernel == "auto" and bool(self._streams)
        )
        if self._batched:
            n = len(self._streams)
            # merged event queue (pop-ordered), consumed by cursor
            self._qt: list[float] = []
            self._qs: list[float] = []
            self._qpos = 0
            # per-stream buffered-but-unmerged (times, services) slices
            self._pend: list[tuple[np.ndarray, np.ndarray] | None] = [None] * n
            self._dry = [False] * n
            self._all_dry = n == 0
            # heap-equivalent tie-break state: last-pop sequence number per
            # stream (initialized below any real pop, in stream order — the
            # initial heap push order)
            self._last_pop = [sid - n for sid in range(n)]
            self._pop_seq = 0
            # streams whose buffers the previous merge fully consumed, in
            # the order their last events pop — the next refill draws their
            # blocks in exactly that order (the heap kernel's draw order)
            self._exhaust_order: list[int] = []
        else:
            for sid in range(len(self._streams)):
                self._pull(sid)

    # -- event plumbing (scalar heap kernel) ----------------------------------

    def _pull(self, stream_id: int) -> None:
        """Fetch the next event of *stream_id* into the heap (if any)."""
        event = self._streams[stream_id].next_event()
        if event is None:
            return
        t, service = event
        if service < 0:
            raise ValueError(f"negative service demand {service} from stream {stream_id}")
        self._counter += 1
        heapq.heappush(self._heap, (t, self._counter, service, stream_id))

    def _next_arrival_time(self) -> float:
        return self._heap[0][0] if self._heap else math.inf

    def _absorb_next_arrival(self) -> None:
        """Move the earliest pending event into the backlog and refill."""
        t, _, service, stream_id = heapq.heappop(self._heap)
        if t < self.clock - 1e-9:
            raise RuntimeError(
                f"event at t={t} arrived in the past (clock={self.clock})"
            )
        self.backlog += service
        self._pull(stream_id)

    # -- load bookkeeping ------------------------------------------------------

    @property
    def rho(self) -> float:
        """Idle system throughput: capacity fraction of first-priority work."""
        return self._own_load + self._shared_load

    # -- simulation -------------------------------------------------------------

    def serve_application(self, work: float) -> float:
        """Serve *work* seconds of application demand; return the finish time.

        The application starts at the current clock and completes once it
        has accumulated *work* seconds of service under strict priority.
        """
        work = check_nonnegative("work", float(work))
        if self._batched:
            return self._serve_batched(work)
        remaining = work
        while True:
            next_t = self._next_arrival_time()
            if self.backlog > 0.0:
                drain_at = self.clock + self.backlog
                if drain_at <= self.clock:
                    # Backlog below the clock's float resolution: drained.
                    self.p1_service_done += self.backlog
                    self.backlog = 0.0
                    continue
                if next_t < drain_at:
                    served = next_t - self.clock
                    # max() guards the one-ulp float leak when served was
                    # computed from clock + backlog.
                    self.backlog = max(0.0, self.backlog - served)
                    self.p1_service_done += served
                    self.clock = next_t
                    self._absorb_next_arrival()
                else:
                    self.p1_service_done += self.backlog
                    self.clock = drain_at
                    self.backlog = 0.0
            else:
                if remaining <= 0.0:
                    return self.clock
                finish_at = self.clock + remaining
                if next_t < finish_at:
                    remaining -= next_t - self.clock
                    self.clock = next_t
                    self._absorb_next_arrival()
                else:
                    self.clock = finish_at
                    remaining = 0.0
                    return self.clock

    def advance_to(self, t: float) -> None:
        """Idle the application until time *t* (a barrier wait).

        First-priority work keeps being served; arrivals in the window are
        absorbed so the backlog at *t* is exact.
        """
        t = float(t)
        if t < self.clock - 1e-9:
            raise ValueError(f"cannot advance backwards: clock={self.clock}, t={t}")
        if self._batched:
            self._advance_batched(t)
            return
        while self.clock < t:
            next_t = self._next_arrival_time()
            if self.backlog > 0.0:
                drain_at = self.clock + self.backlog
                if drain_at <= self.clock:
                    # Backlog below the clock's float resolution: drained.
                    self.p1_service_done += self.backlog
                    self.backlog = 0.0
                    continue
                stop_at = min(next_t, drain_at, t)
                served = stop_at - self.clock
                self.backlog = max(0.0, self.backlog - served)
                self.p1_service_done += served
                self.clock = stop_at
            else:
                self.clock = min(next_t, t)
            while self._heap and self._heap[0][0] <= self.clock:
                self._absorb_next_arrival()

    # -- the batched event-horizon kernel --------------------------------------
    #
    # The scalar kernel pays per event: a heap push/pop (tuple allocation,
    # comparisons) plus a per-event buffer cursor with two float()
    # conversions.  The batched kernel amortizes all of that at block
    # granularity: it merges every stream's buffered events up to a horizon
    # (the earliest last-buffered time across streams, so the merge is
    # complete — no unmerged event can precede it) with one stable argsort,
    # flattens the result to plain Python lists, and then runs the *exact*
    # scalar arithmetic over a cursor.  Because the per-event float
    # operations are replayed in the same order on the same values, the
    # results are bit-identical to the heap loop — including two subtle
    # orderings it goes out of its way to reproduce:
    #
    # * equal-time events from different streams pop from the heap in
    #   least-recently-popped stream order, one event per turn (each pop
    #   re-pushes that stream's next event with a fresh counter);
    #   `_heap_order` replays that with per-stream last-pop sequence
    #   numbers (deterministic daemon lattices hit this constantly);
    # * a stream's next block is drawn from its generator right after its
    #   last buffered event is absorbed; sources sharing one RNG generator
    #   therefore see the same draw order only if the batched kernel
    #   defers each draw to the refill *after* the batch that consumed the
    #   stream — and orders same-refill draws by last-event pop position.

    def _draw_block(self, sid: int) -> None:
        """Load stream *sid*'s next event block into its pending buffer."""
        blk = self._streams[sid].next_block()
        if blk is None:
            self._dry[sid] = True
            return
        times, services = blk
        if services.size and float(services.min()) < 0.0:
            bad = float(services[services < 0.0][0])
            raise ValueError(f"negative service demand {bad} from stream {sid}")
        if times.size > 1 and np.any(np.diff(times) < 0.0):
            raise ValueError(
                f"stream {sid} produced decreasing arrival times within a block"
            )
        self._pend[sid] = (times, services)

    def _heap_order(
        self, mt: np.ndarray, ms: np.ndarray, mid_: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Reorder equal-time ties exactly as the merge heap pops them.

        Also advances the per-stream last-pop sequence numbers the
        tie-break depends on, so later batches keep matching.
        """
        n = int(mt.size)
        seq = self._pop_seq
        last_pop = self._last_pop
        if n < 2 or not bool(np.any(mt[1:] == mt[:-1])):
            # No ties: sorted order is pop order; bulk-update each present
            # stream's last-pop to the position of its final event.
            for sid in np.unique(mid_).tolist():
                last_pop[sid] = seq + int(np.flatnonzero(mid_ == sid)[-1]) + 1
            self._pop_seq = seq + n
            return ms, mid_
        times = mt.tolist()
        sids = mid_.tolist()
        perm = list(range(n))
        permuted = False
        i = 0
        while i < n:
            j = i + 1
            ti = times[i]
            while j < n and times[j] == ti:
                j += 1
            if j - i == 1:
                seq += 1
                last_pop[sids[i]] = seq
            else:
                queues: dict[int, list[int]] = {}
                for pos in range(i, j):
                    queues.setdefault(sids[pos], []).append(pos)
                if len(queues) == 1:
                    # One stream: FIFO order, nothing to re-break.
                    seq += j - i
                    last_pop[sids[i]] = seq
                else:
                    heads = dict.fromkeys(queues, 0)
                    out: list[int] = []
                    for _ in range(j - i):
                        s = min(
                            (s for s in queues if heads[s] < len(queues[s])),
                            key=last_pop.__getitem__,
                        )
                        out.append(queues[s][heads[s]])
                        heads[s] += 1
                        seq += 1
                        last_pop[s] = seq
                    if out != perm[i:j]:
                        perm[i:j] = out
                        permuted = True
            i = j
        self._pop_seq = seq
        if permuted:
            idx = np.asarray(perm, dtype=np.intp)
            return ms[idx], mid_[idx]
        return ms, mid_

    def _refill(self) -> bool:
        """Merge the next horizon's events into the queue; False when dry."""
        if self._all_dry:
            return False
        for sid in self._exhaust_order:
            self._draw_block(sid)
        self._exhaust_order = []
        live: list[int] = []
        for sid in range(len(self._streams)):
            if self._pend[sid] is None and not self._dry[sid]:
                self._draw_block(sid)
            if self._pend[sid] is not None:
                live.append(sid)
        if not live:
            self._all_dry = True
            return False
        # The horizon is the earliest last-buffered time: every stream's
        # buffer reaches it, so no unmerged event can precede any merged
        # one.  The argmin stream contributes its whole buffer, so each
        # refill makes progress.
        horizon = min(float(self._pend[sid][0][-1]) for sid in live)
        parts_t: list[np.ndarray] = []
        parts_s: list[np.ndarray] = []
        parts_id: list[np.ndarray] = []
        exhausted: list[int] = []
        for sid in live:
            t_arr, s_arr = self._pend[sid]
            cut = int(np.searchsorted(t_arr, horizon, side="right"))
            if cut == 0:
                continue
            parts_t.append(t_arr[:cut])
            parts_s.append(s_arr[:cut])
            parts_id.append(np.full(cut, sid, dtype=np.intp))
            if cut == t_arr.size:
                self._pend[sid] = None
                exhausted.append(sid)
            else:
                self._pend[sid] = (t_arr[cut:], s_arr[cut:])
        if len(parts_t) == 1:
            mt, ms, mid_ = parts_t[0], parts_s[0], parts_id[0]
        else:
            mt = np.concatenate(parts_t)
            ms = np.concatenate(parts_s)
            mid_ = np.concatenate(parts_id)
            order = np.argsort(mt, kind="stable")
            mt = mt[order]
            ms = ms[order]
            mid_ = mid_[order]
        if len(self._streams) > 1:
            ms, mid_ = self._heap_order(mt, ms, mid_)
            if len(exhausted) > 1:
                last_pos = {
                    sid: int(np.flatnonzero(mid_ == sid)[-1]) for sid in exhausted
                }
                exhausted.sort(key=last_pos.__getitem__)
        self._exhaust_order = exhausted
        self._qt = mt.tolist()
        self._qs = ms.tolist()
        self._qpos = 0
        return True

    def _serve_batched(self, work: float) -> float:
        remaining = work
        clock = self.clock
        backlog = self.backlog
        p1 = self.p1_service_done
        qt, qs = self._qt, self._qs
        pos = self._qpos
        qlen = len(qt)
        inf = math.inf
        try:
            while True:
                if pos < qlen:
                    next_t = qt[pos]
                elif self._refill():
                    qt, qs = self._qt, self._qs
                    pos = 0
                    qlen = len(qt)
                    next_t = qt[0]
                else:
                    next_t = inf
                if backlog > 0.0:
                    drain_at = clock + backlog
                    if drain_at <= clock:
                        # Backlog below the clock's float resolution: drained.
                        p1 += backlog
                        backlog = 0.0
                        continue
                    if next_t < drain_at:
                        served = next_t - clock
                        # max() guards the one-ulp float leak when served was
                        # computed from clock + backlog.
                        backlog = max(0.0, backlog - served)
                        p1 += served
                        clock = next_t
                        backlog += qs[pos]
                        pos += 1
                    else:
                        p1 += backlog
                        clock = drain_at
                        backlog = 0.0
                else:
                    if remaining <= 0.0:
                        return clock
                    finish_at = clock + remaining
                    if next_t < finish_at:
                        remaining -= next_t - clock
                        clock = next_t
                        backlog += qs[pos]
                        pos += 1
                    else:
                        clock = finish_at
                        remaining = 0.0
                        return clock
        finally:
            self.clock = clock
            self.backlog = backlog
            self.p1_service_done = p1
            self._qpos = pos

    def _advance_batched(self, t: float) -> None:
        clock = self.clock
        backlog = self.backlog
        p1 = self.p1_service_done
        qt, qs = self._qt, self._qs
        pos = self._qpos
        qlen = len(qt)
        inf = math.inf
        try:
            while clock < t:
                if pos < qlen:
                    next_t = qt[pos]
                elif self._refill():
                    qt, qs = self._qt, self._qs
                    pos = 0
                    qlen = len(qt)
                    next_t = qt[0]
                else:
                    next_t = inf
                if backlog > 0.0:
                    drain_at = clock + backlog
                    if drain_at <= clock:
                        # Backlog below the clock's float resolution: drained.
                        p1 += backlog
                        backlog = 0.0
                        continue
                    stop_at = min(next_t, drain_at, t)
                    served = stop_at - clock
                    backlog = max(0.0, backlog - served)
                    p1 += served
                    clock = stop_at
                else:
                    clock = min(next_t, t)
                while True:
                    if pos >= qlen:
                        if not self._refill():
                            break
                        qt, qs = self._qt, self._qs
                        pos = 0
                        qlen = len(qt)
                    et = qt[pos]
                    if et > clock:
                        break
                    if et < clock - 1e-9:
                        raise RuntimeError(
                            f"event at t={et} arrived in the past (clock={clock})"
                        )
                    backlog += qs[pos]
                    pos += 1
        finally:
            self.clock = clock
            self.backlog = backlog
            self.p1_service_done = p1
            self._qpos = pos

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PriorityMachine(clock={self.clock:.3f}, backlog={self.backlog:.3f}, "
            f"rho={self.rho:.3f})"
        )
