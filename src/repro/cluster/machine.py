"""A single cluster node: preemptive-resume strict-priority single server.

The node serves two job classes (paper §4.1):

* **first priority** — variability sources (daemons, bursts); whenever any
  first-priority work is outstanding, the server works on it;
* **second priority** — the tunable application; it only accumulates service
  when the first-priority backlog is empty.

The observed application time for an iteration needing ``work`` seconds of
service is therefore ``work`` plus all the first-priority service performed
while the iteration was in the system — exactly ``y = f(v) + n(v)`` (Eq. 5).
During barrier waits (the node finished its iteration but others have not)
the server keeps draining first-priority backlog.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._util import as_generator, check_nonnegative
from repro.cluster.workload import EVENT_BLOCK, WorkloadSource

__all__ = ["PriorityMachine"]


class _EventBuffer:
    """Array-buffered cursor over one source's event blocks.

    The simulator's merge heap only ever needs each stream's *head* event;
    buffering whole ``(times, services)`` blocks behind that head is what
    lets sources generate events with one vectorized RNG call per block
    while the merge logic stays per-event and exact.
    """

    __slots__ = ("_blocks", "_times", "_services", "_pos")

    def __init__(self, blocks: Iterator[tuple[np.ndarray, np.ndarray]]) -> None:
        self._blocks = blocks
        self._times: np.ndarray | None = None
        self._services: np.ndarray | None = None
        self._pos = 0

    @classmethod
    def from_stream(
        cls, stream: Iterable[tuple[float, float]] | Iterator[tuple[np.ndarray, np.ndarray]]
    ) -> "_EventBuffer":
        """Accept either a per-event ``(t, service)`` iterator (the public
        ``shared_streams`` contract) or an array-block iterator."""
        it = iter(stream)
        try:
            first = next(it)
        except StopIteration:
            return cls(iter(()))
        chained = itertools.chain([first], it)
        if isinstance(first[0], np.ndarray):
            return cls(chained)

        def blockify() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            while True:
                pairs = list(itertools.islice(chained, EVENT_BLOCK))
                if not pairs:
                    return
                arr = np.asarray(pairs, dtype=float)
                yield arr[:, 0], arr[:, 1]

        return cls(blockify())

    def next_event(self) -> tuple[float, float] | None:
        """Pop the stream's next ``(arrival, service)``, or None when dry."""
        while self._times is None or self._pos >= self._times.size:
            try:
                self._times, self._services = next(self._blocks)
            except StopIteration:
                return None
            self._pos = 0
        i = self._pos
        self._pos = i + 1
        return float(self._times[i]), float(self._services[i])


class PriorityMachine:
    """Event-driven strict-priority node simulator.

    Parameters
    ----------
    sources:
        First-priority workload sources private to this node.
    rng:
        Seed or generator for the private sources' event streams.
    shared_streams:
        Optional pre-seeded event streams shared (identically) across all
        nodes of a cluster — models cluster-wide correlated disruptions such
        as global file-system scans (the cross-processor correlation visible
        in the paper's Fig. 3).  Each entry is either a per-event
        ``(arrival, service)`` iterator or a vectorized
        ``(times, services)`` block iterator (a ``stream_blocks`` result).
    """

    def __init__(
        self,
        sources: Sequence[WorkloadSource] = (),
        rng: int | np.random.Generator | None = None,
        *,
        shared_streams: Sequence[Iterable] = (),
        shared_load: float = 0.0,
    ) -> None:
        gen = as_generator(rng)
        self._sources = tuple(sources)
        self._own_load = float(sum(s.load for s in self._sources))
        self._shared_load = check_nonnegative("shared_load", shared_load)
        if self.rho >= 1.0:
            raise ValueError(f"total offered load {self.rho:.3f} >= 1 saturates the node")
        self.clock = 0.0
        self.backlog = 0.0
        #: total first-priority service performed so far (for load audits)
        self.p1_service_done = 0.0
        self._heap: list[tuple[float, int, float, int]] = []
        self._streams: list[_EventBuffer] = []
        self._counter = 0
        for source in self._sources:
            self._add_stream(_EventBuffer(source.stream_blocks(0.0, gen)))
        for stream in shared_streams:
            self._add_stream(_EventBuffer.from_stream(stream))

    # -- event plumbing -------------------------------------------------------

    def _add_stream(self, stream: _EventBuffer) -> None:
        self._streams.append(stream)
        self._pull(len(self._streams) - 1)

    def _pull(self, stream_id: int) -> None:
        """Fetch the next event of *stream_id* into the heap (if any)."""
        event = self._streams[stream_id].next_event()
        if event is None:
            return
        t, service = event
        if service < 0:
            raise ValueError(f"negative service demand {service} from stream {stream_id}")
        self._counter += 1
        heapq.heappush(self._heap, (t, self._counter, service, stream_id))

    def _next_arrival_time(self) -> float:
        return self._heap[0][0] if self._heap else math.inf

    def _absorb_next_arrival(self) -> None:
        """Move the earliest pending event into the backlog and refill."""
        t, _, service, stream_id = heapq.heappop(self._heap)
        if t < self.clock - 1e-9:
            raise RuntimeError(
                f"event at t={t} arrived in the past (clock={self.clock})"
            )
        self.backlog += service
        self._pull(stream_id)

    # -- load bookkeeping ------------------------------------------------------

    @property
    def rho(self) -> float:
        """Idle system throughput: capacity fraction of first-priority work."""
        return self._own_load + self._shared_load

    # -- simulation -------------------------------------------------------------

    def serve_application(self, work: float) -> float:
        """Serve *work* seconds of application demand; return the finish time.

        The application starts at the current clock and completes once it
        has accumulated *work* seconds of service under strict priority.
        """
        work = check_nonnegative("work", float(work))
        remaining = work
        while True:
            next_t = self._next_arrival_time()
            if self.backlog > 0.0:
                drain_at = self.clock + self.backlog
                if drain_at <= self.clock:
                    # Backlog below the clock's float resolution: drained.
                    self.p1_service_done += self.backlog
                    self.backlog = 0.0
                    continue
                if next_t < drain_at:
                    served = next_t - self.clock
                    # max() guards the one-ulp float leak when served was
                    # computed from clock + backlog.
                    self.backlog = max(0.0, self.backlog - served)
                    self.p1_service_done += served
                    self.clock = next_t
                    self._absorb_next_arrival()
                else:
                    self.p1_service_done += self.backlog
                    self.clock = drain_at
                    self.backlog = 0.0
            else:
                if remaining <= 0.0:
                    return self.clock
                finish_at = self.clock + remaining
                if next_t < finish_at:
                    remaining -= next_t - self.clock
                    self.clock = next_t
                    self._absorb_next_arrival()
                else:
                    self.clock = finish_at
                    remaining = 0.0
                    return self.clock

    def advance_to(self, t: float) -> None:
        """Idle the application until time *t* (a barrier wait).

        First-priority work keeps being served; arrivals in the window are
        absorbed so the backlog at *t* is exact.
        """
        t = float(t)
        if t < self.clock - 1e-9:
            raise ValueError(f"cannot advance backwards: clock={self.clock}, t={t}")
        while self.clock < t:
            next_t = self._next_arrival_time()
            if self.backlog > 0.0:
                drain_at = self.clock + self.backlog
                if drain_at <= self.clock:
                    # Backlog below the clock's float resolution: drained.
                    self.p1_service_done += self.backlog
                    self.backlog = 0.0
                    continue
                stop_at = min(next_t, drain_at, t)
                served = stop_at - self.clock
                self.backlog = max(0.0, self.backlog - served)
                self.p1_service_done += served
                self.clock = stop_at
            else:
                self.clock = min(next_t, t)
            while self._heap and self._heap[0][0] <= self.clock:
                self._absorb_next_arrival()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PriorityMachine(clock={self.clock:.3f}, backlog={self.backlog:.3f}, "
            f"rho={self.rho:.3f})"
        )
