"""Per-processor iteration-time traces from a simulated cluster run.

A trace holds ``times[p, k]`` — the wall-clock duration of iteration *k* on
processor *p* — plus the barrier times.  It derives the paper's metrics:

* ``iteration_maxima()`` — ``T_k = max_p t_{p,k}`` (Eq. 1);
* ``total_time()`` — ``Σ_k T_k`` (Eq. 2);
* the flattened sample set used by the heavy-tail diagnostics (Figs. 4–7);
* the cross-processor correlation matrix (the Fig. 3 similarity claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ClusterTrace"]


@dataclass(frozen=True)
class ClusterTrace:
    """Result of :meth:`repro.cluster.Cluster.run`."""

    #: iteration durations, shape (P, K)
    times: np.ndarray
    #: barrier completion times, shape (K,): barrier_times[k] = Σ_{j<=k} T_j
    barrier_times: np.ndarray
    #: idle throughput ρ of the cluster configuration that produced the trace
    rho: float = 0.0
    #: free-form provenance notes (workload description, seed, ...)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        barriers = np.asarray(self.barrier_times, dtype=float)
        if times.ndim != 2:
            raise ValueError(f"times must be 2-D (P, K), got shape {times.shape}")
        if barriers.shape != (times.shape[1],):
            raise ValueError(
                f"barrier_times shape {barriers.shape} does not match K={times.shape[1]}"
            )
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "barrier_times", barriers)

    # -- shape ------------------------------------------------------------------

    @property
    def n_processors(self) -> int:
        return int(self.times.shape[0])

    @property
    def n_iterations(self) -> int:
        return int(self.times.shape[1])

    # -- the paper's metrics -------------------------------------------------------

    def iteration_maxima(self) -> np.ndarray:
        """T_k = max_p t_{p,k} (Eq. 1)."""
        return self.times.max(axis=0)

    def total_time(self) -> float:
        """Total_Time(K) = Σ_k T_k (Eq. 2)."""
        return float(self.iteration_maxima().sum())

    def normalized_total_time(self) -> float:
        """NTT = (1-ρ)·Total_Time (Eq. 23)."""
        return (1.0 - self.rho) * self.total_time()

    def processor_series(self, p: int) -> np.ndarray:
        """Iteration-time series of processor *p* (one curve of Fig. 3)."""
        if not (0 <= p < self.n_processors):
            raise IndexError(f"processor {p} out of range [0, {self.n_processors})")
        return self.times[p].copy()

    def flatten(self) -> np.ndarray:
        """All P×K samples pooled — the data set behind Figs. 4–7."""
        return self.times.ravel().copy()

    # -- structure diagnostics ---------------------------------------------------

    def correlation_matrix(self) -> np.ndarray:
        """Pearson correlation of iteration times across processors.

        The paper observes "high correlation and similarity between the
        curves" of different processors; cluster-wide shared events produce
        exactly that signature.  Degenerate (constant) series correlate as 0.
        """
        x = self.times
        std = x.std(axis=1)
        safe = np.where(std > 0, std, 1.0)
        centered = (x - x.mean(axis=1, keepdims=True)) / safe[:, None]
        corr = centered @ centered.T / x.shape[1]
        corr[std == 0, :] = 0.0
        corr[:, std == 0] = 0.0
        np.fill_diagonal(corr, 1.0)
        return corr

    def mean_cross_correlation(self) -> float:
        """Average off-diagonal correlation — one number for the Fig. 3 claim."""
        corr = self.correlation_matrix()
        p = corr.shape[0]
        if p < 2:
            return 0.0
        off = corr[~np.eye(p, dtype=bool)]
        return float(off.mean())

    def spike_counts(self, small: float = 2.0, big: float = 5.0) -> tuple[int, int]:
        """Count (small, big) spikes relative to the pooled median.

        A sample is a *small spike* when it exceeds ``small × median`` but not
        ``big × median``, and a *big spike* above ``big × median`` — the two
        populations visible in Fig. 3.
        """
        if not (0 < small < big):
            raise ValueError(f"need 0 < small < big, got {small}, {big}")
        data = self.flatten()
        med = float(np.median(data))
        n_big = int(np.sum(data > big * med))
        n_small = int(np.sum(data > small * med)) - n_big
        return n_small, n_big

    def summary(self) -> dict:
        """Headline numbers for reports and benches."""
        data = self.flatten()
        n_small, n_big = self.spike_counts()
        return {
            "processors": self.n_processors,
            "iterations": self.n_iterations,
            "total_time": self.total_time(),
            "median_iteration": float(np.median(data)),
            "max_iteration": float(data.max()),
            "small_spikes": n_small,
            "big_spikes": n_big,
            "mean_cross_correlation": self.mean_cross_correlation(),
            "rho": self.rho,
        }
