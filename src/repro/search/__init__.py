"""Baseline search algorithms the paper compares against or discusses.

* :mod:`repro.search.neldermead` — the Nelder–Mead simplex method with the
  paper's α ∈ {0.5, 2, 3} step set (the original Active Harmony strategy,
  §3.1), adapted to constrained discrete spaces via the projection operator;
* :mod:`repro.search.annealing` — simulated annealing, the canonical
  randomized method the paper argues is unsuitable for *online* tuning
  because of its poor transient behaviour (§2);
* :mod:`repro.search.random_search` — uniform random sampling;
* :mod:`repro.search.coordinate` — cyclic coordinate descent on the
  admissible lattice (a simple pattern-search control).
"""

from repro.search.neldermead import NelderMead
from repro.search.annealing import SimulatedAnnealing
from repro.search.genetic import GeneticAlgorithm
from repro.search.random_search import RandomSearch
from repro.search.coordinate import CoordinateDescent

__all__ = [
    "NelderMead",
    "SimulatedAnnealing",
    "GeneticAlgorithm",
    "RandomSearch",
    "CoordinateDescent",
]
