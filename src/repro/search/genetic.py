"""A generational genetic algorithm — the other §2 cautionary baseline.

The paper names genetic algorithms alongside simulated annealing as
randomized methods that "can ultimately converge to the optimal solution"
but "have very poor initial performance" and are therefore unsuitable for
online tuning.  This implementation exists to make that claim measurable.

Design: a (μ + λ)-style generational GA on the admissible lattice —
tournament selection, uniform crossover, per-coordinate lattice-step
mutation, elitism of one.  Each generation's offspring are asked as one
batch, so on a parallel machine a generation costs ``ceil(λ/P)`` time
steps; the poor transient comes from the population spending many
generations scattered across expensive configurations.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_generator
from repro.core.base import BatchTuner
from repro.space import ParameterSpace

__all__ = ["GeneticAlgorithm"]


class GeneticAlgorithm(BatchTuner):
    """(μ + λ) lattice GA in ask/tell form (never converges on its own)."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        population_size: int = 12,
        tournament: int = 3,
        crossover_rate: float = 0.9,
        mutation_rate: float | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(space)
        if population_size < 2:
            raise ValueError(f"population_size must be >= 2, got {population_size}")
        if not (2 <= tournament <= population_size):
            raise ValueError(
                f"tournament size must lie in [2, population], got {tournament}"
            )
        if not (0.0 <= crossover_rate <= 1.0):
            raise ValueError(f"crossover_rate must lie in [0, 1], got {crossover_rate}")
        self.population_size = int(population_size)
        self.tournament = int(tournament)
        self.crossover_rate = float(crossover_rate)
        # Default mutation: one expected coordinate flip per offspring.
        self.mutation_rate = (
            float(mutation_rate)
            if mutation_rate is not None
            else 1.0 / space.dimension
        )
        if not (0.0 <= self.mutation_rate <= 1.0):
            raise ValueError(f"mutation_rate must lie in [0, 1], got {self.mutation_rate}")
        self.rng = as_generator(rng)
        self._population: list[np.ndarray] = []
        self._fitness: list[float] = []
        self._initialized = False
        self.generation = 0

    # -- incumbent -------------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self._initialized

    @property
    def best_point(self) -> np.ndarray:
        if not self._initialized:
            return self.space.center()
        return self._population[int(np.argmin(self._fitness))].copy()

    @property
    def best_value(self) -> float:
        if not self._initialized:
            return float("inf")
        return float(min(self._fitness))

    # -- genetic operators --------------------------------------------------------

    def _select(self) -> np.ndarray:
        """Tournament selection: best of `tournament` random individuals."""
        idx = self.rng.choice(len(self._population), size=self.tournament, replace=False)
        winner = min(idx, key=lambda i: self._fitness[i])
        return self._population[winner]

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = self.rng.random(self.space.dimension) < 0.5
        return np.where(mask, a, b)

    def _mutate(self, point: np.ndarray) -> np.ndarray:
        out = point.copy()
        for i, param in enumerate(self.space.parameters):
            if self.rng.random() >= self.mutation_rate:
                continue
            if param.is_discrete:
                options = [
                    v
                    for v in (param.lower_neighbor(out[i]), param.upper_neighbor(out[i]))
                    if v is not None
                ]
                if options:
                    out[i] = options[int(self.rng.integers(0, len(options)))]
            else:
                step = 0.1 * param.span * float(self.rng.standard_normal())
                out[i] = param.clip(out[i] + step)
        return out

    # -- ask/tell ---------------------------------------------------------------------

    def _ask(self) -> list[np.ndarray]:
        if not self._initialized:
            return [
                self.space.random_point(self.rng)
                for _ in range(self.population_size)
            ]
        offspring: list[np.ndarray] = []
        # Elitism: re-evaluate the current best alongside the offspring (it
        # keeps its slot in the next generation regardless).
        offspring.append(self.best_point)
        while len(offspring) < self.population_size:
            a, b = self._select(), self._select()
            child = (
                self._crossover(a, b)
                if self.rng.random() < self.crossover_rate
                else a.copy()
            )
            offspring.append(self._mutate(child))
        return offspring

    def _tell(self, batch: list[np.ndarray], values: list[float]) -> None:
        if not self._initialized:
            self._population = [p.copy() for p in batch]
            self._fitness = list(values)
            self._initialized = True
            self.step_log.append("init")
            return
        # (mu + lambda): merge parents and offspring, keep the best mu.
        merged_pts = self._population + [p.copy() for p in batch]
        merged_fit = self._fitness + list(values)
        order = np.argsort(merged_fit, kind="stable")[: self.population_size]
        self._population = [merged_pts[i] for i in order]
        self._fitness = [merged_fit[i] for i in order]
        self.generation += 1
        self.step_log.append(f"generation:{self.generation}")
