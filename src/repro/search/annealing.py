"""Simulated annealing — the "poor transient" baseline (paper §2).

The paper argues randomized methods like simulated annealing are unsuitable
for *online* tuning: they may converge to excellent final configurations,
but the online metric ``Total_Time`` charges for every bad configuration
visited along the way, and annealing visits many.  This implementation
exists to make that argument measurable (Fig. 1's ranking flip and the
ablation benches).

Proposals are lattice-local: one randomly chosen coordinate moves to an
adjacent admissible value (or takes a Gaussian step for continuous
parameters, projected back into the admissible region).  Acceptance follows
Metropolis with a geometric temperature schedule.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import as_generator, check_positive
from repro.core.base import BatchTuner
from repro.space import ParameterSpace

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(BatchTuner):
    """Metropolis annealing over the admissible lattice (ask/tell form)."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        initial_point: np.ndarray | None = None,
        t_initial: float | None = None,
        decay: float = 0.98,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(space)
        self.rng = as_generator(rng)
        start = space.center() if initial_point is None else space.as_point(initial_point)
        if not space.contains(start):
            raise ValueError(f"initial point {start!r} is not admissible")
        if not (0.0 < decay < 1.0):
            raise ValueError(f"decay must lie in (0, 1), got {decay}")
        self._current_point = start
        self._current_value = float("inf")
        self._best_point = start.copy()
        self._best_value = float("inf")
        self._initialized = False
        self.decay = float(decay)
        # Default initial temperature: set adaptively from the first few
        # observed values unless the caller pins it.
        self._t = check_positive("t_initial", t_initial) if t_initial is not None else None
        self._warmup_values: list[float] = []
        self.n_accepted = 0
        self.n_proposed = 0

    # -- incumbent ------------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self._initialized

    @property
    def best_point(self) -> np.ndarray:
        return self._best_point.copy()

    @property
    def best_value(self) -> float:
        return self._best_value

    @property
    def temperature(self) -> float:
        return self._t if self._t is not None else float("nan")

    # -- proposal -------------------------------------------------------------

    def _propose(self) -> np.ndarray:
        point = self._current_point.copy()
        i = int(self.rng.integers(0, self.space.dimension))
        param = self.space[i]
        if param.is_discrete:
            options = []
            lo = param.lower_neighbor(point[i])
            hi = param.upper_neighbor(point[i])
            if lo is not None:
                options.append(lo)
            if hi is not None:
                options.append(hi)
            if not options:
                return point  # single-valued coordinate: stay put
            point[i] = options[int(self.rng.integers(0, len(options)))]
        else:
            step = 0.1 * param.span * float(self.rng.standard_normal())
            point[i] = param.clip(point[i] + step)
        return point

    # -- ask/tell --------------------------------------------------------------

    def _ask(self) -> list[np.ndarray]:
        if not self._initialized:
            return [self._current_point.copy()]
        return [self._propose()]

    def _tell(self, batch: list[np.ndarray], values: list[float]) -> None:
        value = values[0]
        point = batch[0]
        if not self._initialized:
            self._initialized = True
            self._current_value = value
            self._best_point = point.copy()
            self._best_value = value
            self._warmup_values.append(value)
            self.step_log.append("init")
            return
        self.n_proposed += 1
        if self._t is None:
            # Adaptive warm-up: temperature from early value dispersion.
            self._warmup_values.append(value)
            if len(self._warmup_values) >= 5:
                spread = float(np.std(self._warmup_values))
                self._t = max(spread, 1e-6)
            accept = value < self._current_value
        else:
            delta = value - self._current_value
            if delta <= 0:
                accept = True
            else:
                accept = float(self.rng.random()) < math.exp(-delta / self._t)
            self._t = max(self._t * self.decay, 1e-12)
        if accept:
            self.n_accepted += 1
            self._current_point = point.copy()
            self._current_value = value
            self.step_log.append("accept")
        else:
            self.step_log.append("reject")
        if value < self._best_value:
            self._best_point = point.copy()
            self._best_value = value
