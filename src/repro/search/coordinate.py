"""Cyclic coordinate descent on the admissible lattice.

A simple pattern-search control: sweep the coordinates in order; for each,
evaluate the adjacent admissible values (both directions, asked as one
2-point batch — so it benefits mildly from parallel evaluation) and move to
the better neighbour if it improves the incumbent.  Converged when one full
sweep produces no move — which on a discrete lattice is exactly the paper's
2N-probe local-minimum certificate, reached incrementally.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import BatchTuner
from repro.space import ParameterSpace

__all__ = ["CoordinateDescent"]


class CoordinateDescent(BatchTuner):
    """Greedy axis-by-axis descent with one-lattice-step moves."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        initial_point: np.ndarray | None = None,
    ) -> None:
        super().__init__(space)
        start = space.center() if initial_point is None else space.as_point(initial_point)
        if not space.contains(start):
            raise ValueError(f"initial point {start!r} is not admissible")
        self._current = start
        self._current_value = float("inf")
        self._initialized = False
        self._axis = 0
        self._moved_this_sweep = False
        self.n_sweeps = 0

    @property
    def initialized(self) -> bool:
        return self._initialized

    @property
    def best_point(self) -> np.ndarray:
        return self._current.copy()

    @property
    def best_value(self) -> float:
        return self._current_value

    def _neighbors_on_axis(self, axis: int) -> list[np.ndarray]:
        param = self.space[axis]
        out = []
        for step in (param.lower_neighbor(self._current[axis]),
                     param.upper_neighbor(self._current[axis])):
            if step is None:
                continue
            pt = self._current.copy()
            pt[axis] = step
            out.append(pt)
        return out

    def _ask(self) -> list[np.ndarray]:
        if not self._initialized:
            return [self._current.copy()]
        # Find the next axis with at least one neighbour; wrapping the sweep
        # decides convergence.
        for _ in range(self.space.dimension):
            batch = self._neighbors_on_axis(self._axis)
            if batch:
                return batch
            self._advance_axis()
            if self.converged:
                return []
        self._mark_converged("no_neighbours")
        return []

    def _tell(self, batch: list[np.ndarray], values: list[float]) -> None:
        if not self._initialized:
            self._initialized = True
            self._current_value = values[0]
            self.step_log.append("init")
            return
        best_idx = int(np.argmin(values))
        if values[best_idx] < self._current_value:
            self._current = batch[best_idx].copy()
            self._current_value = values[best_idx]
            self._moved_this_sweep = True
            self.step_log.append(f"move:axis{self._axis}")
        else:
            self.step_log.append(f"stay:axis{self._axis}")
        self._advance_axis()

    def _advance_axis(self) -> None:
        self._axis += 1
        if self._axis >= self.space.dimension:
            self._axis = 0
            self.n_sweeps += 1
            if not self._moved_this_sweep and self._initialized:
                self._mark_converged("full_sweep_no_move")
            self._moved_this_sweep = False
