"""Nelder–Mead simplex search (paper §3.1) under the projection operator.

The method maintains N+1 vertices and each iteration replaces the *worst*
vertex ``v_N`` with a point on the line ``v_N + α (c − v_N)`` through the
centroid ``c`` of the remaining vertices, with the paper's step set
α ∈ {2 (reflection), 3 (expansion), 0.5 (contraction)}.  If no candidate
improves on ``f(v_N)``, the whole simplex shrinks around the best vertex.

This is the strategy the original Active Harmony used, retained here as the
principal baseline.  Its §3.1 failure modes are observable in this
implementation (and exercised by the tests): the simplex can become
*degenerate* (affine rank < N, see :func:`repro.core.simplex.affine_rank`) —
on discrete lattices the projection can even collapse distinct vertices onto
the same point — after which the search cannot span the space.  It is also
inherently sequential: every ask is a single point.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.core.base import BatchTuner
from repro.core.initial import minimal_simplex
from repro.core.simplex import Simplex, Vertex
from repro.space import ParameterSpace

__all__ = ["NelderMead", "NmPhase"]


class NmPhase(enum.Enum):
    INIT = "init"
    REFLECT = "reflect"
    EXPAND = "expand"
    CONTRACT = "contract"
    SHRINK = "shrink"
    DONE = "done"


class NelderMead(BatchTuner):
    """Projected Nelder–Mead with the paper's α ∈ {0.5, 2, 3} moves."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        initial_points: Sequence[np.ndarray] | None = None,
        r: float = 0.2,
        max_stall_iterations: int = 8,
    ) -> None:
        super().__init__(space)
        if initial_points is not None:
            pts = [space.as_point(p) for p in initial_points]
        else:
            pts = minimal_simplex(space, r)
        if len(pts) < 2:
            raise ValueError("need at least 2 initial simplex vertices")
        for p in pts:
            if not space.contains(p):
                raise ValueError(f"initial point {p!r} is not admissible")
        if max_stall_iterations < 1:
            raise ValueError(
                f"max_stall_iterations must be >= 1, got {max_stall_iterations}"
            )
        self._initial_points = pts
        self.max_stall_iterations = int(max_stall_iterations)
        self.phase = NmPhase.INIT
        self.simplex: Simplex | None = None
        self.n_iterations = 0
        self._stall = 0
        self._queue: list[np.ndarray] = [p.copy() for p in pts]
        self._collected: list[Vertex] = []
        self._reflection: Vertex | None = None
        self._shrink_queue: list[np.ndarray] = []

    # -- incumbent -----------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self.simplex is not None

    @property
    def best_point(self) -> np.ndarray:
        if self.simplex is None:
            return self._initial_points[0].copy()
        return self.simplex.best.point.copy()

    @property
    def best_value(self) -> float:
        if self.simplex is None:
            return float("inf")
        return self.simplex.best.value

    # -- geometry ----------------------------------------------------------------

    def _centroid(self) -> np.ndarray:
        """Centroid of all vertices except the worst (Eq. 3)."""
        assert self.simplex is not None
        pts = [v.point for v in self.simplex.vertices[:-1]]
        return np.mean(np.asarray(pts, dtype=float), axis=0)

    def _line_point(self, alpha: float) -> np.ndarray:
        """``v_N + α (c - v_N)`` projected toward the centroid's admissible
        snap (the transformation centre for Nelder–Mead is the centroid)."""
        assert self.simplex is not None
        vn = self.simplex.worst.point
        c = self._centroid()
        raw = vn + alpha * (c - vn)
        center = self.space.nearest(c)  # admissible stand-in for the centroid
        return self.space.project(raw, center)

    # -- ask/tell -------------------------------------------------------------------

    def _ask(self) -> list[np.ndarray]:
        if self.phase is NmPhase.INIT:
            return [self._queue[len(self._collected)].copy()]
        if self.phase is NmPhase.REFLECT:
            return [self._line_point(2.0)]
        if self.phase is NmPhase.EXPAND:
            return [self._line_point(3.0)]
        if self.phase is NmPhase.CONTRACT:
            return [self._line_point(0.5)]
        if self.phase is NmPhase.SHRINK:
            return [self._shrink_queue[len(self._collected)].copy()]
        return []

    def _tell(self, batch: list[np.ndarray], values: list[float]) -> None:
        if self.phase is NmPhase.INIT:
            self._collected.append(Vertex(batch[0], values[0]))
            if len(self._collected) == len(self._queue):
                self.simplex = Simplex(self._collected)
                self._collected = []
                self._queue = []
                self.step_log.append("init")
                self.phase = NmPhase.REFLECT
            return
        assert self.simplex is not None
        if self.phase is NmPhase.REFLECT:
            self._reflection = Vertex(batch[0], values[0])
            if values[0] < self.simplex.best.value:
                self.phase = NmPhase.EXPAND
            elif values[0] < self.simplex.worst.value:
                self._replace_worst(self._reflection, "reflect")
            else:
                self.phase = NmPhase.CONTRACT
            return
        if self.phase is NmPhase.EXPAND:
            assert self._reflection is not None
            if values[0] < self._reflection.value:
                self._replace_worst(Vertex(batch[0], values[0]), "expand")
            else:
                self._replace_worst(self._reflection, "reflect")
            return
        if self.phase is NmPhase.CONTRACT:
            if values[0] < self.simplex.worst.value:
                self._replace_worst(Vertex(batch[0], values[0]), "contract")
            else:
                # Nothing beat the worst vertex: shrink everything toward best.
                v0 = self.simplex.best.point
                self._shrink_queue = [
                    self.space.project(0.5 * (v0 + v.point), v0)
                    for v in self.simplex.vertices[1:]
                ]
                self._collected = []
                self.phase = NmPhase.SHRINK
            return
        if self.phase is NmPhase.SHRINK:
            self._collected.append(Vertex(batch[0], values[0]))
            if len(self._collected) == len(self._shrink_queue):
                self.simplex.replace_moving(self._collected)
                self._collected = []
                self._shrink_queue = []
                self.step_log.append("shrink")
                self._finish_iteration(improved=False)
            return
        raise AssertionError(f"tell in unhandled phase {self.phase}")  # pragma: no cover

    # -- bookkeeping --------------------------------------------------------------

    def _replace_worst(self, vertex: Vertex, kind: str) -> None:
        assert self.simplex is not None
        improved = vertex.value < self.simplex.best.value
        self.simplex.vertices[-1] = vertex
        self.simplex.order()
        self.step_log.append(kind)
        self._finish_iteration(improved=improved)

    def _finish_iteration(self, *, improved: bool) -> None:
        assert self.simplex is not None
        self.n_iterations += 1
        self._stall = 0 if improved else self._stall + 1
        # Stop when the simplex has collapsed or the search stalls; unlike the
        # rank-ordering tuners there is no local-minimum certificate (§3.1's
        # "unpredictable" termination).
        if self.space.coincident(self.simplex.points()):
            self.phase = NmPhase.DONE
            self._mark_converged("simplex_collapsed")
        elif self._stall >= self.max_stall_iterations:
            self.phase = NmPhase.DONE
            self._mark_converged("stalled")
        else:
            self.phase = NmPhase.REFLECT
