"""Uniform random search — the sanity-floor baseline.

Proposes independent uniformly random admissible points forever and tracks
the best observation.  Under the online metric it pays full price for every
random (usually bad) configuration, so any structured tuner should beat it
comfortably on ``Total_Time`` — a useful calibration for the benches.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_generator
from repro.core.base import BatchTuner
from repro.space import ParameterSpace

__all__ = ["RandomSearch"]


class RandomSearch(BatchTuner):
    """I.i.d. uniform sampling over the admissible region."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        batch_size: int = 1,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(space)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        self.rng = as_generator(rng)
        self._best_point: np.ndarray | None = None
        self._best_value = float("inf")

    @property
    def initialized(self) -> bool:
        return self._best_point is not None

    @property
    def best_point(self) -> np.ndarray:
        if self._best_point is None:
            return self.space.center()
        return self._best_point.copy()

    @property
    def best_value(self) -> float:
        return self._best_value

    def _ask(self) -> list[np.ndarray]:
        return [self.space.random_point(self.rng) for _ in range(self.batch_size)]

    def _tell(self, batch: list[np.ndarray], values: list[float]) -> None:
        for point, value in zip(batch, values):
            if value < self._best_value:
                self._best_value = value
                self._best_point = point.copy()
